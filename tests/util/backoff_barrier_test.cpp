#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "util/backoff.hpp"
#include "util/barrier.hpp"
#include "util/padded.hpp"
#include "util/tagged_ptr.hpp"

namespace dc::util {
namespace {

TEST(Backoff, PauseTerminatesAndGrows) {
  Backoff b(2, 64);
  for (int i = 0; i < 20; ++i) b.pause();  // must not hang
  b.reset();
  for (int i = 0; i < 20; ++i) b.pause();
  SUCCEED();
}

TEST(Backoff, WindowStaysWithinBounds) {
  // Decorrelated jitter: every drawn window must land in [min, max], no
  // matter how long the pause sequence runs (the old implementation
  // saturated at max and stayed there; the jittered one keeps drawing but
  // must never exceed the cap or undershoot the floor).
  Backoff b(4, 64);
  for (int i = 0; i < 200; ++i) {
    b.pause();
    EXPECT_GE(b.last_window(), 4u);
    EXPECT_LE(b.last_window(), 64u);
  }
}

TEST(Backoff, ResetReturnsWindowToMinimum) {
  Backoff b(4, 1024);
  for (int i = 0; i < 50; ++i) b.pause();  // drive the window up
  b.reset();
  // After reset the next draw is bounded by 3x the minimum (the
  // decorrelated-jitter growth cap), not by wherever the previous episode
  // left the window.
  b.pause();
  EXPECT_LE(b.last_window(), 12u);
}

TEST(Backoff, WindowsAreJittered) {
  // Two distinct instances must not walk identical deterministic ladders —
  // that lockstep is what the jitter exists to break. With a 512-wide range
  // and 32 draws each, identical sequences are vanishingly unlikely.
  Backoff a(4, 2048);
  Backoff b(4, 2048);
  bool differed = false;
  for (int i = 0; i < 32; ++i) {
    a.pause();
    b.pause();
    if (a.last_window() != b.last_window()) differed = true;
  }
  EXPECT_TRUE(differed);
}

TEST(Backoff, DegenerateBoundsClamp) {
  Backoff zero(0, 0);  // min clamps to 1, max clamps up to min
  for (int i = 0; i < 10; ++i) zero.pause();
  EXPECT_EQ(zero.last_window(), 1u);
  Backoff inverted(16, 4);  // max < min clamps to min: fixed window
  for (int i = 0; i < 10; ++i) inverted.pause();
  EXPECT_EQ(inverted.last_window(), 16u);
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int p = 0; p < kPhases; ++p) {
        phase_counter.fetch_add(1, std::memory_order_acq_rel);
        barrier.arrive_and_wait();
        // After the barrier, everyone must have bumped the counter.
        if (phase_counter.load(std::memory_order_acquire) <
            (p + 1) * kThreads) {
          violated.store(true);
        }
        barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
  EXPECT_EQ(phase_counter.load(), kThreads * kPhases);
}

TEST(SpinBarrier, SingleParty) {
  SpinBarrier barrier(1);
  for (int i = 0; i < 100; ++i) barrier.arrive_and_wait();  // never blocks
  SUCCEED();
}

TEST(Padded, FillsCacheLine) {
  EXPECT_EQ(sizeof(Padded<uint32_t>) % kCacheLine, 0u);
  EXPECT_EQ(sizeof(Padded<std::atomic<uint64_t>>) % kCacheLine, 0u);
  EXPECT_GE(alignof(Padded<uint8_t>), kCacheLine);
  Padded<uint64_t> arr[2];
  const auto a = reinterpret_cast<uintptr_t>(&arr[0].value);
  const auto b = reinterpret_cast<uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, kCacheLine) << "adjacent padded values share a line";
}

TEST(Padded, AccessorsWork) {
  Padded<int> p(7);
  EXPECT_EQ(*p, 7);
  *p = 9;
  EXPECT_EQ(p.value, 9);
}

TEST(TaggedPtr, EqualityIncludesTag) {
  int x;
  TaggedPtr<int> a{&x, 1};
  TaggedPtr<int> b{&x, 1};
  TaggedPtr<int> c{&x, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(TaggedPtr, AtomicCasIsUsable) {
  // The double-width CAS the MS queue and PTB rely on (lock-free with
  // -mcx16; functionally correct regardless).
  int x, y;
  std::atomic<TaggedPtr<int>> ptr{TaggedPtr<int>{&x, 5}};
  TaggedPtr<int> expected{&x, 5};
  EXPECT_TRUE(ptr.compare_exchange_strong(expected, TaggedPtr<int>{&y, 6}));
  EXPECT_EQ(ptr.load().ptr, &y);
  EXPECT_EQ(ptr.load().tag, 6u);
  expected = {&x, 5};
  EXPECT_FALSE(ptr.compare_exchange_strong(expected, TaggedPtr<int>{&x, 7}));
  EXPECT_EQ(expected.ptr, &y);  // CAS failure reports the current value
}

}  // namespace
}  // namespace dc::util
