#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace dc::util {
namespace {

std::string capture(const Table& t, bool csv) {
  std::FILE* f = std::tmpfile();
  if (csv) {
    t.print_csv(f);
  } else {
    t.print(f);
  }
  std::fseek(f, 0, SEEK_SET);
  std::string out;
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) out += buf;
  std::fclose(f);
  return out;
}

TEST(Table, CsvRoundTrip) {
  Table t({"threads", "htm", "ms"});
  t.add_row({"1", "0.5", "0.4"});
  t.add_row({"2", "1.0", "0.7"});
  EXPECT_EQ(capture(t, true),
            "threads,htm,ms\n1,0.5,0.4\n2,1.0,0.7\n");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"a", "long_header"});
  t.add_row({"wide_cell_value", "1"});
  const std::string out = capture(t, false);
  EXPECT_NE(out.find("long_header"), std::string::npos);
  EXPECT_NE(out.find("wide_cell_value"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_EQ(capture(t, true), "a,b,c\n1,,\n");
}

TEST(Table, FmtDouble) {
  EXPECT_EQ(Table::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
}

TEST(Table, FmtIntegers) {
  EXPECT_EQ(Table::fmt(uint64_t{12345}), "12345");
  EXPECT_EQ(Table::fmt(int64_t{-42}), "-42");
}

}  // namespace
}  // namespace dc::util
