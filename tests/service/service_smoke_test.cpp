// End-to-end service harness smoke: short real-time runs asserting the
// conservation laws, graceful shedding, and kill-respawn-reap recovery.
// These are the invariants the v8 report validator re-checks offline; here
// they are checked in-process against the live counters.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "htm/stats.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"

namespace dc::service {
namespace {

class ServiceSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::fault::set_rate_override(-1.0);
    htm::reset_stats();
    reset_counters();
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
    htm::fault::set_rate_override(-1.0);
  }
  htm::Config saved_;
};

TEST_F(ServiceSmoke, CleanRunConservesSessionsAndLeavesNothingBehind) {
  ServiceConfig cfg;
  cfg.arrival_rate = 2000.0;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  cfg.duration_ms = 150.0;
  Service svc(cfg);
  svc.start();
  const uint64_t generated = svc.run_generator();
  svc.stop();

  const Counters c = counters();
  EXPECT_EQ(c.generated, generated);
  EXPECT_GT(c.generated, 0u);
  EXPECT_EQ(c.generated, c.accepted + c.shed);
  EXPECT_EQ(c.accepted, c.completed + c.killed);
  EXPECT_EQ(c.killed, 0u);
  EXPECT_EQ(c.worker_deaths, 0u);
  EXPECT_GT(c.requests, c.completed) << "sessions issue multiple Updates";
  // Every session deregistered: no leases, no orphans, empty Collect.
  EXPECT_EQ(svc.collect().lease_count(), 0u);
  EXPECT_EQ(svc.collect().orphan_count(), 0u);
  std::vector<collect::Value> out;
  svc.collect().collect(out);
  EXPECT_TRUE(out.empty());
}

TEST_F(ServiceSmoke, OverloadShedsInsteadOfBlockingTheGenerator) {
  // A one-slot queue under heavy offered load: the open-loop generator
  // must keep its schedule and shed, never block — and the shed sessions
  // must be counted, not silently dropped.
  ServiceConfig cfg;
  cfg.arrival_rate = 50000.0;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.duration_ms = 100.0;
  Service svc(cfg);
  svc.start();
  svc.run_generator();
  svc.stop();

  const Counters c = counters();
  EXPECT_GT(c.shed, 0u) << "a 1-deep queue at 50k/s must shed";
  EXPECT_GT(c.completed, 0u) << "admitted sessions still complete";
  EXPECT_EQ(c.generated, c.accepted + c.shed);
  EXPECT_EQ(c.accepted, c.completed + c.killed);
}

TEST_F(ServiceSmoke, KillPhaseIsSurvivedReapedAndRespawned) {
  ServiceConfig cfg;
  cfg.arrival_rate = 4000.0;
  cfg.workers = 2;
  cfg.duration_ms = 200.0;
  Service svc(cfg);

  std::vector<ChaosPhase> phases;
  std::string err;
  ASSERT_TRUE(parse_script("@30 kill worker=0\n@90 kill worker=1\n", &phases,
                           &err))
      << err;
  ChaosOrchestrator chaos(phases, &svc);
  svc.start();
  chaos.start();
  svc.run_generator();
  chaos.stop();
  svc.stop();

  const Counters c = counters();
  EXPECT_EQ(c.worker_deaths, 2u);
  EXPECT_EQ(c.respawns, 2u) << "every dead worker slot must be respawned";
  EXPECT_EQ(c.killed, c.worker_deaths)
      << "each death takes exactly its in-flight session";
  EXPECT_EQ(c.chaos_phases, 2u);
  EXPECT_EQ(c.generated, c.accepted + c.shed);
  EXPECT_EQ(c.accepted, c.completed + c.killed);
  EXPECT_GT(c.completed, 0u) << "the pool kept serving through the kills";
  // The killed sessions' leases were orphaned and reaped (the default
  // after=1 deferral lands the death past the admission block), and the
  // final state is clean.
  const htm::TxnStats agg = htm::aggregate_stats();
  EXPECT_EQ(agg.crashes_injected, 2u);
  EXPECT_EQ(svc.collect().lease_count(), 0u);
  EXPECT_EQ(svc.collect().orphan_count(), 0u);
}

TEST_F(ServiceSmoke, FaultStormPhaseRevertsItsOverride) {
  ServiceConfig cfg;
  cfg.arrival_rate = 2000.0;
  cfg.workers = 2;
  cfg.duration_ms = 150.0;
  Service svc(cfg);

  std::vector<ChaosPhase> phases;
  std::string err;
  ASSERT_TRUE(parse_script("@20 fault-storm rate=0.6 for=50\n", &phases,
                           &err))
      << err;
  ChaosOrchestrator chaos(phases, &svc);
  svc.start();
  chaos.start();
  svc.run_generator();
  chaos.stop();
  svc.stop();

  const Counters c = counters();
  EXPECT_EQ(c.chaos_phases, 1u);
  EXPECT_EQ(c.generated, c.accepted + c.shed);
  EXPECT_EQ(c.accepted, c.completed + c.killed);
  EXPECT_LT(htm::fault::rate_override(), 0.0)
      << "storm override must be reverted after the phase window";
  EXPECT_GT(htm::aggregate_stats().faults_injected, 0u)
      << "the storm window should have injected spurious aborts";
}

}  // namespace
}  // namespace dc::service
