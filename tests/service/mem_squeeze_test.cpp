// End-to-end memory-pressure recovery (DESIGN.md §15): a scripted
// mem-squeeze phase drops the pool's capacity bound below the mapped
// footprint mid-run. The service must shed at admission (counted as
// shed_mem, never a process abort), the pool must mark the pressure episode
// at the squeeze's onset and close it at release, and admission must resume
// once the bound lifts. Allocation-fault injection must surface as counted
// per-session OOM outcomes under the same conservation laws.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "memory/pool.hpp"
#include "service/chaos.hpp"
#include "service/service.hpp"

namespace dc::service {
namespace {

class MemSqueeze : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::fault::set_rate_override(-1.0);
    htm::reset_stats();
    reset_counters();
    mem::pool_set_limit_override(0);
    mem::pool_clear_alloc_fault_script();
    mem::pool_flush_thread_cache();
  }
  void TearDown() override {
    mem::pool_set_limit_override(0);
    mem::pool_clear_alloc_fault_script();
    htm::config() = saved_;
    htm::crash::reset_all();
  }
  htm::Config saved_;
};

TEST_F(MemSqueeze, SqueezePhaseShedsAtAdmissionAndRecovers) {
  // Make sure the pool has a nonzero footprint, then squeeze the bound to
  // 1 KiB — far below it, so utilization is pinned past the admission
  // watermark for the whole window and every connect in it sheds.
  mem::pool_deallocate(mem::pool_allocate(64), 64);
  const auto pool_before = mem::pool_stats();
  ASSERT_GT(pool_before.os_bytes, 1024u);

  ServiceConfig cfg;
  cfg.arrival_rate = 2000.0;
  cfg.workers = 2;
  cfg.duration_ms = 250.0;
  Service svc(cfg);

  std::vector<ChaosPhase> phases;
  std::string err;
  ASSERT_TRUE(parse_script("@30 mem-squeeze limit=1k for=60\n", &phases, &err))
      << err;
  ChaosOrchestrator chaos(phases, &svc);

  // Snapshot the counters shortly after the squeeze window closes, so the
  // final diff proves admission resumed after the release.
  Counters mid{};
  std::thread watcher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(140));
    mid = counters();
  });

  svc.start();
  chaos.start();
  svc.run_generator();
  chaos.stop();
  svc.stop();
  watcher.join();

  const Counters c = counters();
  EXPECT_EQ(c.chaos_phases, 1u);
  EXPECT_GT(c.shed_mem, 0u) << "the squeeze window must shed";
  EXPECT_GT(c.completed, 0u) << "the service survives the squeeze";
  EXPECT_EQ(c.generated, c.accepted + c.shed + c.shed_mem);
  EXPECT_EQ(c.accepted, c.completed + c.killed + c.oom);
  EXPECT_EQ(c.worker_deaths, 0u) << "backpressure, not casualties";
  EXPECT_GT(c.accepted, mid.accepted)
      << "admission must resume once the bound lifts";

  // The pool marked the episode at the squeeze onset and closed it at the
  // release — and the phase reverted its override.
  const auto pool_after = mem::pool_stats();
  EXPECT_GE(pool_after.mem_pressure_onsets, pool_before.mem_pressure_onsets + 1);
  EXPECT_GE(pool_after.mem_pressure_exits, pool_before.mem_pressure_exits + 1);
  EXPECT_EQ(pool_after.mem_pressure_onsets - pool_before.mem_pressure_onsets,
            pool_after.mem_pressure_exits - pool_before.mem_pressure_exits);
  EXPECT_FALSE(mem::pool_under_pressure());
  EXPECT_EQ(mem::pool_limit_override(), 0u);
}

TEST_F(MemSqueeze, AllocFaultsSurfaceAsCountedOomSessions) {
  // Seeded allocation-fault injection, no capacity bound: denials surface
  // through the session path as counted OOM outcomes — the process never
  // aborts and the conservation laws keep holding.
  htm::config().mem.alloc_fault_rate = 0.1;
  mem::pool_reset_alloc_fault_thread();
  const auto pool_before = mem::pool_stats();

  ServiceConfig cfg;
  cfg.arrival_rate = 2000.0;
  cfg.workers = 2;
  cfg.duration_ms = 200.0;
  Service svc(cfg);
  svc.start();
  svc.run_generator();
  svc.stop();

  const Counters c = counters();
  const auto pool_after = mem::pool_stats();
  EXPECT_GT(pool_after.alloc_faults_injected,
            pool_before.alloc_faults_injected);
  EXPECT_GT(c.oom, 0u) << "injected denials must be counted";
  EXPECT_EQ(c.generated, c.accepted + c.shed + c.shed_mem);
  EXPECT_EQ(c.accepted, c.completed + c.killed + c.oom);
  EXPECT_GT(c.completed, 0u) << "most sessions still complete at rate 0.1";
  EXPECT_EQ(c.worker_deaths, 0u);
}

TEST_F(MemSqueeze, CleanRunMovesNoMemCounters) {
  // Zero-overhead guard, end to end: an unbounded, injection-free service
  // run must not move a single bounded-mode counter.
  const auto pool_before = mem::pool_stats();

  ServiceConfig cfg;
  cfg.arrival_rate = 2000.0;
  cfg.workers = 2;
  cfg.duration_ms = 100.0;
  Service svc(cfg);
  svc.start();
  svc.run_generator();
  svc.stop();

  const Counters c = counters();
  const auto pool_after = mem::pool_stats();
  EXPECT_EQ(c.shed_mem, 0u);
  EXPECT_EQ(c.oom, 0u);
  EXPECT_EQ(pool_after.alloc_failures, pool_before.alloc_failures);
  EXPECT_EQ(pool_after.alloc_faults_injected,
            pool_before.alloc_faults_injected);
  EXPECT_EQ(pool_after.mem_pressure_onsets, pool_before.mem_pressure_onsets);
  EXPECT_EQ(pool_after.mem_pressure_exits, pool_before.mem_pressure_exits);
}

}  // namespace
}  // namespace dc::service
