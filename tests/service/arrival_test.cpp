// The open-loop arrival process: mean preservation, burst structure, and
// determinism. These properties are what the service harness's accounting
// rests on — an arrival process whose realized rate drifts from the
// configured one would silently mis-calibrate every "sustainable rate"
// claim, and a non-deterministic one would make shed counts unreplayable.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "service/arrival.hpp"

namespace dc::service {
namespace {

// Sample statistics over n gaps.
struct GapStats {
  double mean_ns = 0.0;
  double cv = 0.0;  // coefficient of variation (stddev / mean)
};

GapStats sample_gaps(ArrivalProcess& p, int n) {
  std::vector<double> gaps;
  gaps.reserve(n);
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = static_cast<double>(p.next_gap_ns());
    gaps.push_back(g);
    sum += g;
  }
  GapStats s;
  s.mean_ns = sum / n;
  double var = 0.0;
  for (double g : gaps) var += (g - s.mean_ns) * (g - s.mean_ns);
  var /= n;
  s.cv = std::sqrt(var) / s.mean_ns;
  return s;
}

TEST(Arrival, PoissonMeanMatchesConfiguredRate) {
  // 1000/s -> mean gap 1e6 ns. 20k draws: the sample mean of an
  // exponential is within a few percent with overwhelming probability;
  // the +-10% band leaves room for every seed we might ever pick.
  for (uint64_t seed : {1ull, 7ull, 12345ull}) {
    ArrivalConfig cfg;
    cfg.rate_per_sec = 1000.0;
    cfg.burstiness = 0.0;
    cfg.seed = seed;
    ArrivalProcess p(cfg);
    const GapStats s = sample_gaps(p, 20000);
    EXPECT_NEAR(s.mean_ns, 1e6, 1e5) << "seed=" << seed;
    // Exponential gaps: CV == 1 in the limit.
    EXPECT_NEAR(s.cv, 1.0, 0.1) << "seed=" << seed;
  }
}

TEST(Arrival, BurstyPreservesTheMeanRate) {
  // The MMPP-2 dwells equally (in expectation) in the hot state at
  // lambda*(1+b) and the cold state at lambda*(1-b), so the time-average
  // rate stays lambda: the burstiness knob reshapes variance, never load.
  ArrivalConfig cfg;
  cfg.rate_per_sec = 1000.0;
  cfg.burstiness = 0.8;
  cfg.seed = 42;
  ArrivalProcess p(cfg);
  const GapStats s = sample_gaps(p, 40000);
  EXPECT_NEAR(s.mean_ns, 1e6, 1e5);
}

TEST(Arrival, BurstyIsOverdispersedRelativeToPoisson) {
  // The whole point of the knob: gap CV must exceed the exponential's 1.
  // At b = 0.8 the two-state mixture's CV is ~2 (rates 1.8x and 0.2x the
  // base); require a conservative > 1.2 so the test is seed-robust.
  ArrivalConfig cfg;
  cfg.rate_per_sec = 1000.0;
  cfg.burstiness = 0.8;
  cfg.seed = 42;
  ArrivalProcess p(cfg);
  const GapStats s = sample_gaps(p, 40000);
  EXPECT_GT(s.cv, 1.2);
}

TEST(Arrival, BurstyActuallyAlternatesStates) {
  ArrivalConfig cfg;
  cfg.rate_per_sec = 1000.0;
  cfg.burstiness = 0.5;
  cfg.seed = 3;
  ArrivalProcess p(cfg);
  int hot = 0, cold = 0;
  for (int i = 0; i < 40000; ++i) {
    p.next_gap_ns();
    (p.hot() ? hot : cold)++;
  }
  // Equal expected dwell: both states must carry substantial mass.
  EXPECT_GT(hot, 5000);
  EXPECT_GT(cold, 5000);
}

TEST(Arrival, SameSeedReplaysTheSameSchedule) {
  for (double b : {0.0, 0.6}) {
    ArrivalConfig cfg;
    cfg.rate_per_sec = 2000.0;
    cfg.burstiness = b;
    cfg.seed = 99;
    ArrivalProcess a(cfg);
    ArrivalProcess c(cfg);
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(a.next_gap_ns(), c.next_gap_ns())
          << "burstiness=" << b << " diverged at gap " << i;
    }
  }
}

TEST(Arrival, DifferentSeedsDiverge) {
  ArrivalConfig cfg;
  cfg.rate_per_sec = 1000.0;
  cfg.seed = 1;
  ArrivalProcess a(cfg);
  cfg.seed = 2;
  ArrivalProcess b(cfg);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_gap_ns() == b.next_gap_ns()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Arrival, DegenerateConfigsAreClamped) {
  // rate <= 0 and out-of-range burstiness must not divide by zero or hang;
  // the constructor clamps them to usable values.
  ArrivalConfig cfg;
  cfg.rate_per_sec = 0.0;
  cfg.burstiness = 2.0;
  ArrivalProcess p(cfg);
  uint64_t sum = 0;
  for (int i = 0; i < 100; ++i) sum += p.next_gap_ns();
  EXPECT_GT(sum, 0u);
}

}  // namespace
}  // namespace dc::service
