// The bounded accept queue: shed accounting conservation, non-blocking
// admission, and drain-after-close (the "admitted sessions always finish"
// half of the service's conservation laws).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "service/queue.hpp"

namespace dc::service {
namespace {

Session make_session(uint64_t id) {
  Session s;
  s.id = id;
  return s;
}

TEST(BoundedQueue, ShedsWhenFullAndConservesEveryOffer) {
  // Offer more than capacity with no consumer: exactly `cap` admitted,
  // the rest refused, and accepted + shed == generated.
  BoundedSessionQueue q(8);
  uint64_t accepted = 0, shed = 0;
  const uint64_t generated = 20;
  for (uint64_t i = 0; i < generated; ++i) {
    if (q.try_push(make_session(i))) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  EXPECT_EQ(accepted, 8u);
  EXPECT_EQ(shed, 12u);
  EXPECT_EQ(accepted + shed, generated);
  EXPECT_EQ(q.size(), 8u);
}

TEST(BoundedQueue, PopDrainsInFifoOrderAfterClose) {
  BoundedSessionQueue q(16);
  for (uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(make_session(i)));
  q.close();
  EXPECT_FALSE(q.try_push(make_session(99))) << "admission after close";
  Session s;
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.pop(&s)) << "close() must not abandon admitted sessions";
    EXPECT_EQ(s.id, i);
  }
  EXPECT_FALSE(q.pop(&s)) << "closed and drained: pop must return false";
}

TEST(BoundedQueue, CloseIsIdempotentAndWakesBlockedPoppers) {
  BoundedSessionQueue q(4);
  std::atomic<int> done{0};
  std::thread popper([&] {
    Session s;
    while (q.pop(&s)) {
    }
    done = 1;
  });
  // Give the popper a moment to block, then close twice.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  q.close();
  popper.join();
  EXPECT_EQ(done.load(), 1);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueue, ConcurrentProducerConsumerConservation) {
  // One open-loop producer (never blocks), two consumers. Every offered
  // session is either consumed or shed — none invented, none lost.
  BoundedSessionQueue q(32);
  std::atomic<uint64_t> consumed{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      Session s;
      while (q.pop(&s)) consumed.fetch_add(1, std::memory_order_relaxed);
    });
  }
  uint64_t accepted = 0, shed = 0;
  const uint64_t generated = 50000;
  for (uint64_t i = 0; i < generated; ++i) {
    if (q.try_push(make_session(i))) {
      ++accepted;
    } else {
      ++shed;
    }
  }
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(accepted + shed, generated);
  EXPECT_EQ(consumed.load(), accepted)
      << "admitted sessions must all reach a consumer";
}

}  // namespace
}  // namespace dc::service
