// The chaos script grammar (src/service/chaos.hpp): parsing, validation
// errors with line numbers, canonical spec reconstruction, and onset
// ordering. The orchestrator's runtime behavior is covered by the service
// smoke test and the scheduled connect-kill suite; this file pins the
// front-end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "htm/crash.hpp"
#include "service/chaos.hpp"

namespace dc::service {
namespace {

TEST(ChaosScript, ParsesEveryPhaseKind) {
  std::vector<ChaosPhase> phases;
  std::string err;
  const std::string text =
      "# header comment\n"
      "@100 fault-storm rate=0.5 for=50\n"
      "\n"
      "@200 kill worker=1 point=lock_held   # trailing comment\n"
      "@300 kill worker=any\n"
      "@400 rate-spike x=8 for=25\n";
  ASSERT_TRUE(parse_script(text, &phases, &err)) << err;
  ASSERT_EQ(phases.size(), 4u);

  EXPECT_EQ(phases[0].kind, ChaosPhase::Kind::kFaultStorm);
  EXPECT_DOUBLE_EQ(phases[0].at_ms, 100.0);
  EXPECT_DOUBLE_EQ(phases[0].rate, 0.5);
  EXPECT_DOUBLE_EQ(phases[0].for_ms, 50.0);

  EXPECT_EQ(phases[1].kind, ChaosPhase::Kind::kKill);
  EXPECT_EQ(phases[1].worker, 1u);
  EXPECT_EQ(phases[1].point, htm::crash::Point::kLockHeld);
  EXPECT_EQ(phases[1].after_blocks, 1u) << "kill deferral default";

  EXPECT_EQ(phases[2].worker, htm::crash::kAnyWorker);
  EXPECT_EQ(phases[2].point, htm::crash::Point::kTxnOp);

  EXPECT_EQ(phases[3].kind, ChaosPhase::Kind::kRateSpike);
  EXPECT_DOUBLE_EQ(phases[3].spike, 8.0);
}

TEST(ChaosScript, CanonicalSpecRoundTrips) {
  // The reconstructed spec (whitespace-normalized, defaults made explicit)
  // must itself re-parse to the same phase.
  std::vector<ChaosPhase> a, b;
  std::string err;
  ASSERT_TRUE(parse_script("@250   kill   worker=any after=3\n", &a, &err));
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(a[0].spec, "@250 kill worker=any point=txn_op after=3");
  ASSERT_TRUE(parse_script(a[0].spec + "\n", &b, &err)) << err;
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0].worker, a[0].worker);
  EXPECT_EQ(b[0].point, a[0].point);
  EXPECT_EQ(b[0].after_blocks, 3u);
  EXPECT_EQ(b[0].spec, a[0].spec);
}

TEST(ChaosScript, PhasesAreSortedByOnset) {
  std::vector<ChaosPhase> phases;
  std::string err;
  ASSERT_TRUE(parse_script(
      "@900 kill worker=0\n@100 fault-storm rate=0.1 for=10\n", &phases,
      &err));
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_DOUBLE_EQ(phases[0].at_ms, 100.0);
  EXPECT_DOUBLE_EQ(phases[1].at_ms, 900.0);
}

TEST(ChaosScript, ErrorsNameTheOffendingLine) {
  struct Bad {
    const char* text;
    const char* needle;  // expected fragment of the error
  };
  const Bad cases[] = {
      {"kill worker=0\n", "expected '@<ms>'"},
      {"@100 explode\n", "unknown verb"},
      {"@100 fault-storm rate=0.5\n", "needs rate= and for="},
      {"@100 fault-storm rate=1.5 for=10\n", "rate must be in [0,1]"},
      {"@100 kill point=txn_op\n", "kill needs worker="},
      {"@100 kill worker=0 point=sideways\n", "point must be"},
      {"@100 kill worker=0 after=-1\n", "after= must be"},
      {"@100 rate-spike for=10\n", "needs x= and for="},
      {"@100 rate-spike x=2 bogus\n", "expected key=value"},
      {"@100 kill worker=0 color=red\n", "unknown key"},
  };
  for (const Bad& c : cases) {
    std::vector<ChaosPhase> phases;
    std::string err;
    EXPECT_FALSE(parse_script(c.text, &phases, &err)) << c.text;
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_NE(err.find(c.needle), std::string::npos)
        << "for input: " << c.text << "\ngot error: " << err;
  }
}

TEST(ChaosScript, EmptyAndCommentOnlyScriptsAreValid) {
  std::vector<ChaosPhase> phases;
  std::string err;
  ASSERT_TRUE(parse_script("", &phases, &err));
  EXPECT_TRUE(phases.empty());
  ASSERT_TRUE(parse_script("# nothing\n\n  # more nothing\n", &phases, &err));
  EXPECT_TRUE(phases.empty());
}

}  // namespace
}  // namespace dc::service
