// Test-side glue for the deterministic scheduler (src/sched).
//
// run_scheduled() is the one entry point the scheduled suites use: it
// wraps each logical-thread body with the per-thread injection-stream
// reset the scheduler's determinism contract needs, honours the
// --replay-schedule / --sched-seed flags and their environment
// equivalents (DC_SCHED_REPLAY, DC_SCHED_SEED), and — on a gtest
// failure inside the run — writes the schedule trace to disk and
// prints the exact command that replays it. The companion gtest main
// (tests/support/sched_gtest_main.cpp) defines the globals and the
// failure listener.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "htm/clock.hpp"
#include "htm/crash.hpp"
#include "htm/fault.hpp"
#include "htm/orec.hpp"
#include "memory/pool.hpp"
#include "sched/sched.hpp"
#include "util/thread_id.hpp"

namespace dc::schedtest {

// What the failure listener reports. Updated by run_scheduled; `valid`
// stays false in suites that never schedule (they still get the
// fault/crash seed report).
struct ActiveRun {
  bool valid = false;
  std::string name;
  uint64_t seed = 0;
  std::string policy;
  std::string trace_path;  // set once a failing trace has been written
};

// Defined in sched_gtest_main.cpp.
ActiveRun& last_run();
const std::string& replay_path();       // --replay-schedule PATH
bool seed_override(uint64_t* out);      // --sched-seed N
const std::string& test_binary_name();  // argv[0]

// Seed-sweep width for the exploration battery: DC_SCHED_SEEDS=N
// overrides (the CI sched-sweep leg and its nightly-scale input).
inline uint64_t sweep_seed_count(uint64_t dflt) {
  if (const char* e = std::getenv("DC_SCHED_SEEDS")) {
    const uint64_t v = std::strtoull(e, nullptr, 10);
    if (v > 0) return v;
  }
  return dflt;
}

inline std::string trace_dir() {
  if (const char* e = std::getenv("DC_SCHED_TRACE_DIR")) return e;
  return "sched-traces";
}

// Runs bodies under the scheduler with the test contract applied:
//  * each logical thread re-seeds its fault/crash streams lazily, so
//    injected chaos is a pure function of (config, schedule seed,
//    logical index) — see fault.cpp/crash.cpp seed_stream;
//  * when --replay-schedule names a trace whose `name` matches this
//    run, the options are overridden to replay it exactly;
//  * when --sched-seed is given, it replaces opts.seed;
//  * if the run produced a new gtest failure, the trace is written to
//    DC_SCHED_TRACE_DIR (default ./sched-traces) and the repro command
//    is printed.
// Determinism prerequisite: catch the shared clock up to every residual
// orec version before the run starts. GV5 leaves sloppy stamps above the
// clock; how far above depends on process history, and that gap leaks
// into extension decisions and GV5 stamp arithmetic — the one
// environmental input that could make a replay diverge from its
// recording. After this, all in-run version arithmetic is relative to
// the run-start clock.
inline void quiesce_clock() {
  uint64_t maxv = 0;
  const htm::Orec* table = htm::orec_table();
  for (uint64_t i = 0; i < htm::kOrecCount; ++i) {
    const uint64_t v = table[i].value.load(std::memory_order_relaxed);
    if (!htm::orec_is_locked(v) && htm::orec_version(v) > maxv) {
      maxv = htm::orec_version(v);
    }
  }
  htm::clock_catch_up(maxv);
}

inline sched::RunResult run_scheduled(
    sched::Options opts, std::vector<std::function<void()>> bodies) {
  quiesce_clock();
  uint64_t forced_seed;
  if (seed_override(&forced_seed)) opts.seed = forced_seed;

  sched::Trace recorded;
  if (!replay_path().empty() &&
      sched::Trace::read_file(replay_path(), &recorded) &&
      recorded.name == opts.name) {
    opts.policy = sched::Policy::kReplay;
    opts.replay = &recorded;
    opts.seed = recorded.seed;
    std::fprintf(stderr, "[sched] replaying %s (name=%s seed=%llu)\n",
                 replay_path().c_str(), recorded.name.c_str(),
                 static_cast<unsigned long long>(recorded.seed));
  }

  std::vector<std::function<void()>> wrapped;
  wrapped.reserve(bodies.size());
  for (auto& body : bodies) {
    wrapped.push_back([b = std::move(body)] {
      util::thread_id();  // claim the dense id before the body runs
      htm::fault::reset_thread();
      htm::crash::reset_thread();
      mem::pool_reset_alloc_fault_thread();
      b();
    });
  }

  const bool failed_before = ::testing::Test::HasFailure();
  sched::RunResult r = sched::run(opts, std::move(wrapped));

  ActiveRun& ar = last_run();
  ar.valid = true;
  ar.name = opts.name;
  ar.seed = opts.seed;
  ar.policy = sched::to_string(opts.policy);
  ar.trace_path.clear();

  if (!failed_before && ::testing::Test::HasFailure()) {
    std::error_code ec;
    std::filesystem::create_directories(trace_dir(), ec);
    const std::string path = trace_dir() + "/" + opts.name + "-seed" +
                             std::to_string(opts.seed) + ".trace";
    if (r.trace.write_file(path)) {
      ar.trace_path = path;
      const ::testing::TestInfo* ti =
          ::testing::UnitTest::GetInstance()->current_test_info();
      std::fprintf(stderr,
                   "[sched] FAILURE under scheduled run '%s' seed=%llu "
                   "policy=%s\n[sched] schedule trace written to %s\n"
                   "[sched] replay: %s --gtest_filter=%s.%s "
                   "--replay-schedule=%s\n",
                   opts.name.c_str(),
                   static_cast<unsigned long long>(opts.seed),
                   ar.policy.c_str(), path.c_str(),
                   test_binary_name().c_str(),
                   ti != nullptr ? ti->test_suite_name() : "*",
                   ti != nullptr ? ti->name() : "*", path.c_str());
    }
  }
  return r;
}

}  // namespace dc::schedtest
