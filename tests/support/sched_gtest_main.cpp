// Custom gtest main for the concurrency suites: parses the scheduler
// flags and installs a failure listener that prints every seed needed
// to re-run a red test deterministically — the schedule seed and trace
// path when the failure happened under the deterministic scheduler,
// and the fault/crash injection seeds either way (before this, a
// failed txn_property_test or robustness-tier run gave no way to
// reproduce the same interleaving).
//
// Flags (also as environment variables, for ctest-driven runs):
//   --replay-schedule=PATH   (DC_SCHED_REPLAY)  replay a recorded trace
//   --sched-seed=N           (DC_SCHED_SEED)    override the run seed
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "htm/config.hpp"
#include "tests/support/sched_harness.hpp"

namespace dc::schedtest {
namespace {
ActiveRun g_last_run;
std::string g_replay_path;
bool g_have_seed = false;
uint64_t g_seed = 0;
std::string g_binary_name = "<test-binary>";
}  // namespace

ActiveRun& last_run() { return g_last_run; }
const std::string& replay_path() { return g_replay_path; }
bool seed_override(uint64_t* out) {
  if (g_have_seed) *out = g_seed;
  return g_have_seed;
}
const std::string& test_binary_name() { return g_binary_name; }

namespace {

class ReproListener : public ::testing::EmptyTestEventListener {
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() == nullptr || !info.result()->Failed()) return;
    const ActiveRun& ar = g_last_run;
    if (ar.valid) {
      std::fprintf(stderr,
                   "[repro] %s.%s failed; last scheduled run '%s' "
                   "seed=%llu policy=%s%s%s\n",
                   info.test_suite_name(), info.name(), ar.name.c_str(),
                   static_cast<unsigned long long>(ar.seed),
                   ar.policy.c_str(),
                   ar.trace_path.empty() ? "" : " trace=",
                   ar.trace_path.c_str());
      if (!ar.trace_path.empty()) {
        std::fprintf(stderr,
                     "[repro] replay: %s --gtest_filter=%s.%s "
                     "--replay-schedule=%s\n",
                     g_binary_name.c_str(), info.test_suite_name(),
                     info.name(), ar.trace_path.c_str());
      }
    }
    const auto& cfg = dc::htm::config();
    std::fprintf(stderr,
                 "[repro] injection streams: fault seed=0x%llx rate=%g, "
                 "crash seed=0x%llx rate=%g (DC_FAULT/DC_CRASH env)\n",
                 static_cast<unsigned long long>(cfg.fault.seed),
                 cfg.fault.rate,
                 static_cast<unsigned long long>(cfg.crash.seed),
                 cfg.crash.rate);
  }
};

}  // namespace
}  // namespace dc::schedtest

int main(int argc, char** argv) {
  using dc::schedtest::g_binary_name;
  using dc::schedtest::g_have_seed;
  using dc::schedtest::g_replay_path;
  using dc::schedtest::g_seed;

  if (argc > 0) g_binary_name = argv[0];
  if (const char* e = std::getenv("DC_SCHED_REPLAY")) g_replay_path = e;
  if (const char* e = std::getenv("DC_SCHED_SEED")) {
    g_seed = std::strtoull(e, nullptr, 0);
    g_have_seed = true;
  }

  // Strip our flags before gtest sees argv (it rejects unknown flags in
  // --gtest_* form only, but keeping argv clean avoids surprises).
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--replay-schedule=", 18) == 0) {
      g_replay_path = a + 18;
    } else if (std::strcmp(a, "--replay-schedule") == 0 && i + 1 < argc) {
      g_replay_path = argv[++i];
    } else if (std::strncmp(a, "--sched-seed=", 13) == 0) {
      g_seed = std::strtoull(a + 13, nullptr, 0);
      g_have_seed = true;
    } else if (std::strcmp(a, "--sched-seed") == 0 && i + 1 < argc) {
      g_seed = std::strtoull(argv[++i], nullptr, 0);
      g_have_seed = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new dc::schedtest::ReproListener);
  return RUN_ALL_TESTS();
}
