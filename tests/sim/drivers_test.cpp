// The benchmark drivers themselves: they must terminate, produce positive
// throughput, and leave the collect object quiescent and empty.
#include <gtest/gtest.h>

#include "collect/registry.hpp"
#include "sim/drivers.hpp"
#include "sim/options.hpp"
#include "util/cycles.hpp"

namespace dc::sim {
namespace {

using collect::make_algorithm;
using collect::MakeParams;

MakeParams params() {
  MakeParams p;
  p.static_capacity = 80;
  p.max_threads = 4;
  return p;
}

TEST(Drivers, MixedWorkloadRunsAndQuiesces) {
  auto obj = make_algorithm("ArrayDynAppendDereg", params());
  const double thru = run_mixed(*obj, 3, 64, 32, MixedMix{}, 30.0);
  EXPECT_GT(thru, 0.0);
  std::vector<collect::Value> out;
  obj->collect(out);
  EXPECT_TRUE(out.empty()) << "driver leaked registrations";
}

TEST(Drivers, MixedWorkloadAllAlgorithms) {
  for (const auto& info : collect::all_algorithms()) {
    auto obj = info.make(params());
    const double thru = run_mixed(*obj, 2, 16, 8, MixedMix{}, 10.0);
    EXPECT_GT(thru, 0.0) << info.name;
    std::vector<collect::Value> out;
    obj->collect(out);
    EXPECT_TRUE(out.empty()) << info.name;
  }
}

TEST(Drivers, CollectUpdateReportsCollectorThroughput) {
  auto obj = make_algorithm("ArrayStatAppendDereg", params());
  const auto r =
      run_collect_update(*obj, 3, 12, util::ns_to_cycles(5'000), 30.0);
  EXPECT_GT(r.collects, 0u);
  EXPECT_GT(r.collects_per_us, 0.0);
  // 12 handles stay registered for the whole run: each collect sees 12.
  EXPECT_NEAR(r.slots_per_us / r.collects_per_us, 12.0, 0.5);
  std::vector<collect::Value> out;
  obj->collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(Drivers, CollectDeregKeepsHandleBudget) {
  auto obj = make_algorithm("ArrayDynAppendDereg", params());
  const auto r = run_collect_dereg(*obj, 3, 12, util::ns_to_cycles(2'000),
                                   util::ns_to_cycles(2'000), 30.0);
  EXPECT_GT(r.collects, 0u);
  // Churn means collects see at most 12, at least 12 - churners handles.
  const double avg = r.slots_per_us / r.collects_per_us;
  EXPECT_LE(avg, 12.01);
  EXPECT_GE(avg, 12.0 - 3.5);
  std::vector<collect::Value> out;
  obj->collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(Drivers, VaryingSlotsProducesPhasedSeries) {
  auto obj = make_algorithm("ArrayDynAppendDereg", params());
  const auto series = run_varying_slots(*obj, 3, util::ns_to_cycles(5'000),
                                        8, 32, 100.0, 600.0, 50.0);
  EXPECT_GE(series.size(), 8u);
  for (const auto& p : series) EXPECT_GT(p.collects_per_us, 0.0);
  std::vector<collect::Value> out;
  obj->collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(Drivers, OptionsParsing) {
  const char* argv[] = {"prog", "--csv", "--duration-ms", "10",
                        "--repeats", "5", "--max-threads", "8"};
  const auto opts = Options::parse(8, const_cast<char**>(argv));
  EXPECT_TRUE(opts.csv);
  EXPECT_DOUBLE_EQ(opts.duration_ms, 10.0);
  EXPECT_EQ(opts.repeats, 5);
  EXPECT_EQ(opts.max_threads, 8u);
  const auto sweep = thread_sweep(opts);
  EXPECT_EQ(sweep.back(), 8u);
  EXPECT_EQ(sweep.front(), 1u);
}

TEST(Drivers, OptionsDefaults) {
  const char* argv[] = {"prog"};
  const auto opts = Options::parse(1, const_cast<char**>(argv));
  EXPECT_FALSE(opts.csv);
  // Hardware-scaled default: between 4 and the paper's 16.
  EXPECT_GE(opts.max_threads, 4u);
  EXPECT_LE(opts.max_threads, 16u);
  EXPECT_EQ(thread_sweep(opts).back(), opts.max_threads == 16 ? 16u
            : thread_sweep(opts).back());
  EXPECT_LE(thread_sweep(opts).back(), opts.max_threads);
}

}  // namespace
}  // namespace dc::sim
