// Wide (multi-word) values: no torn reads under concurrent updates, and
// basic spec conformance of both wide-value objects.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "collect/wide.hpp"
#include "htm/config.hpp"

namespace dc::collect {
namespace {

TEST(WideValue, ChecksumDetectsTearing) {
  WideValue v = WideValue::make(1, 2, 3);
  EXPECT_TRUE(v.consistent());
  WideValue torn = v;
  torn.payload[1] = 99;  // payload from another version
  EXPECT_FALSE(torn.consistent());
}

template <class W>
void basic_semantics() {
  W obj;
  WideHandle a = obj.register_handle(WideValue::make(1, 2, 3));
  WideHandle b = obj.register_handle(WideValue::make(4, 5, 6));
  std::vector<WideValue> out;
  obj.collect(out);
  EXPECT_EQ(out.size(), 2u);
  for (const auto& v : out) EXPECT_TRUE(v.consistent());
  obj.update(a, WideValue::make(7, 8, 9));
  obj.collect(out);
  bool found = false;
  for (const auto& v : out) {
    if (v == WideValue::make(7, 8, 9)) found = true;
  }
  EXPECT_TRUE(found);
  obj.deregister(a);
  obj.collect(out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], WideValue::make(4, 5, 6));
  obj.deregister(b);
  obj.collect(out);
  EXPECT_TRUE(out.empty());
}

TEST(WideCollect, SearchNoBasicSemantics) {
  basic_semantics<WideArrayStatSearchNo>();
}
TEST(WideCollect, AppendDeregBasicSemantics) {
  basic_semantics<WideArrayDynAppendDereg>();
}

template <class W>
void no_torn_reads() {
  // The §5.1 hazard this machinery exists to prevent: a Collect overlapping
  // an Update of a multi-word value must never see a mix of old and new.
  const auto saved = htm::config();
  htm::config().txn_yield_every_loads = 3;  // force overlap on 1 core
  {
    W obj;
    std::vector<WideHandle> handles;
    for (uint64_t i = 0; i < 12; ++i) {
      handles.push_back(obj.register_handle(WideValue::make(i, i * 3, i * 7)));
    }
    std::atomic<bool> stop{false};
    std::thread updater([&] {
      uint64_t s = 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        ++s;
        obj.update(handles[s % handles.size()],
                   WideValue::make(s, s * 3, s * 7));
      }
    });
    std::vector<WideValue> out;
    for (int round = 0; round < 50; ++round) {
      obj.collect(out);
      EXPECT_EQ(out.size(), 12u);
      for (const auto& v : out) {
        ASSERT_TRUE(v.consistent()) << "torn wide value";
      }
    }
    stop.store(true);
    updater.join();
    for (WideHandle h : handles) obj.deregister(h);
  }
  htm::config() = saved;
}

TEST(WideCollect, SearchNoNoTornReads) {
  no_torn_reads<WideArrayStatSearchNo>();
}
TEST(WideCollect, AppendDeregNoTornReads) {
  no_torn_reads<WideArrayDynAppendDereg>();
}

TEST(WideCollect, AppendDeregResizePreservesWideValues) {
  WideArrayDynAppendDereg obj(16);
  std::vector<WideHandle> handles;
  for (uint64_t i = 0; i < 100; ++i) {
    handles.push_back(obj.register_handle(WideValue::make(i, i + 1, i + 2)));
  }
  EXPECT_GE(obj.capacity_now(), 100);
  std::vector<WideValue> out;
  obj.collect(out);
  EXPECT_EQ(out.size(), 100u);
  for (const auto& v : out) EXPECT_TRUE(v.consistent());
  while (handles.size() > 4) {
    obj.deregister(handles.back());
    handles.pop_back();
  }
  EXPECT_LE(obj.capacity_now(), 64);
  obj.collect(out);
  EXPECT_EQ(out.size(), 4u);
  for (WideHandle h : handles) obj.deregister(h);
}

}  // namespace
}  // namespace dc::collect
