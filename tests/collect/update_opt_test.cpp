// The §4.1 Update-optimized ArrayDynAppendDereg variant: handle cells keep
// the value (naked-store updates); slots move, cells do not.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "collect/array_dyn_append_dereg_upd.hpp"
#include "htm/stats.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

TEST(UpdateOpt, UpdateUsesNoTransaction) {
  ArrayDynAppendDeregUpdateOpt obj(16);
  Handle h = obj.register_handle(1);
  htm::reset_stats();
  for (int i = 0; i < 100; ++i) obj.update(h, static_cast<Value>(i));
  const auto stats = htm::aggregate_stats();
  EXPECT_EQ(stats.commits, 0u) << "updates must be naked stores";
  EXPECT_EQ(stats.nontxn_stores, 100u);
  obj.deregister(h);
}

TEST(UpdateOpt, BaselineUpdateUsesTransactions) {
  // Control: the plain variant pays a transaction per update (§5.1's 215ns
  // class).
  ArrayDynAppendDereg obj(16);
  Handle h = obj.register_handle(1);
  htm::reset_stats();
  for (int i = 0; i < 100; ++i) obj.update(h, static_cast<Value>(i));
  EXPECT_EQ(htm::aggregate_stats().commits, 100u);
  obj.deregister(h);
}

TEST(UpdateOpt, ValuesSurviveCompactionAndResize) {
  ArrayDynAppendDeregUpdateOpt obj(16);
  util::Xoshiro256 rng(3);
  std::vector<std::pair<Handle, Value>> live;
  Value next = 1;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t dice = rng.next_below(10);
    if (dice < 5 || live.empty()) {
      live.emplace_back(obj.register_handle(next), next);
      ++next;
    } else if (dice < 8) {
      const std::size_t i = rng.next_below(live.size());
      obj.update(live[i].first, next);
      live[i].second = next;
      ++next;
    } else {
      const std::size_t i = rng.next_below(live.size());
      obj.deregister(live[i].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    if (op % 200 == 0) {
      std::vector<Value> out;
      obj.collect(out);
      std::set<Value> s(out.begin(), out.end());
      EXPECT_EQ(s.size(), live.size()) << "op " << op;
      for (const auto& [h, v] : live) EXPECT_TRUE(s.count(v)) << v;
    }
  }
  for (const auto& [h, v] : live) obj.deregister(h);
  EXPECT_EQ(obj.count_now(), 0);
}

TEST(UpdateOpt, NakedUpdatesVisibleToConcurrentCollects) {
  // The naked store must still conflict correctly with Collect transactions
  // (strong atomicity): a stably bound handle may never be missed, and
  // values may never go backwards (per-handle monotone updates).
  ArrayDynAppendDeregUpdateOpt obj(16);
  constexpr int kHandles = 8;
  std::vector<Handle> handles;
  for (int i = 0; i < kHandles; ++i) {
    handles.push_back(obj.register_handle(static_cast<Value>(i) << 32));
  }
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> floor{0};
  std::thread updater([&] {
    uint64_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++seq;
      for (int i = 0; i < kHandles; ++i) {
        obj.update(handles[static_cast<std::size_t>(i)],
                   (static_cast<Value>(i) << 32) | seq);
      }
      floor.store(seq, std::memory_order_release);
    }
  });
  std::vector<Value> out;
  for (int round = 0; round < 400; ++round) {
    const uint64_t f = floor.load(std::memory_order_acquire);
    obj.collect(out);
    bool seen[kHandles] = {};
    for (const Value v : out) {
      const int id = static_cast<int>(v >> 32);
      ASSERT_LT(id, kHandles);
      EXPECT_GE(v & 0xffffffffULL, f) << "stale value";
      seen[id] = true;
    }
    for (int i = 0; i < kHandles; ++i) EXPECT_TRUE(seen[i]) << i;
  }
  stop.store(true);
  updater.join();
  for (Handle h : handles) obj.deregister(h);
}

TEST(UpdateOpt, FootprintShrinksLikeTheBaseVariant) {
  ArrayDynAppendDeregUpdateOpt obj(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 256; ++v) handles.push_back(obj.register_handle(v));
  const auto peak = obj.footprint_bytes();
  for (Handle h : handles) obj.deregister(h);
  EXPECT_LT(obj.footprint_bytes(), peak / 4);
  EXPECT_LE(obj.capacity_now(), 16);
}

}  // namespace
}  // namespace dc::collect
