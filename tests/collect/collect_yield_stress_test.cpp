// Failure injection: maximum-interleaving stress. With
// txn_yield_every_loads=3 every transaction hands the core to its rivals
// mid-flight, forcing the cross-thread interleavings a single-core host
// would otherwise never produce. The spec invariants must survive — under
// both global-clock policies, since the forced preemption is also the
// sharpest concurrent exercise of GV5's re-sample rule.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "collect/registry.hpp"
#include "htm/config.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

#if defined(DC_SCHED)
#include <functional>

#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"
#endif

namespace dc::collect {
namespace {

class CollectYieldStress
    : public ::testing::TestWithParam<std::tuple<AlgoInfo, htm::ClockPolicy>> {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::config().txn_yield_every_loads = 3;
    htm::config().clock_policy = std::get<1>(GetParam());
    MakeParams params;
    params.static_capacity = 256;
    params.max_threads = 8;
    obj_ = std::get<0>(GetParam()).make(params);
  }
  void TearDown() override { htm::config() = saved_; }
  std::unique_ptr<DynamicCollect> obj_;
  htm::Config saved_;
};

TEST_P(CollectYieldStress, InvariantsUnderForcedPreemption) {
  constexpr int kWorkers = 3;
  constexpr Value kStableTag = 0xABCull << 52;
  constexpr Value kChurnTag = 0xDEFull << 52;
  std::vector<Handle> stable;
  for (int i = 0; i < 8; ++i) {
    stable.push_back(
        obj_->register_handle(kStableTag | static_cast<Value>(i)));
  }
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(kWorkers + 1);
  std::vector<std::thread> workers;
  const bool fast_collect_eager =
      std::string(obj_->name()) == "ListFastCollect";
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      barrier.arrive_and_wait();
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 7919 + 1);
      std::vector<Handle> mine;
      uint64_t seq = 0;
      int iters = 0;
      while (!stop.load(std::memory_order_relaxed) && ++iters < 100000) {
        const uint64_t dice = rng.next_below(10);
        // Eager FastCollect: cap churn (deregister storms can stall the
        // checker's Collect indefinitely — the documented §3.1.2 problem).
        const bool may_churn = !fast_collect_eager || (iters % 8 == 0);
        if (dice < 4 && mine.size() < 20 && may_churn) {
          mine.push_back(obj_->register_handle(kChurnTag | ++seq));
        } else if (dice < 6 && !mine.empty() && may_churn) {
          obj_->deregister(mine.back());
          mine.pop_back();
        } else if (!mine.empty()) {
          obj_->update(mine[rng.next_below(mine.size())],
                       kChurnTag | ++seq);
        }
      }
      for (Handle h : mine) obj_->deregister(h);
    });
  }
  barrier.arrive_and_wait();
  std::vector<Value> out;
  for (int round = 0; round < 40; ++round) {
    obj_->collect(out);
    std::set<Value> stable_seen;
    for (const Value v : out) {
      const bool is_stable =
          (v >> 52) == (kStableTag >> 52) && (v & ((1ULL << 52) - 1)) < 8;
      const bool is_churn = (v >> 52) == (kChurnTag >> 52);
      ASSERT_TRUE(is_stable || is_churn)
          << obj_->name() << ": foreign value 0x" << std::hex << v;
      if (is_stable) stable_seen.insert(v);
    }
    ASSERT_EQ(stable_seen.size(), 8u) << obj_->name() << " round " << round;
  }
  stop.store(true);
  for (auto& t : workers) t.join();
  for (Handle h : stable) obj_->deregister(h);
  obj_->collect(out);
  EXPECT_TRUE(out.empty()) << obj_->name();
}

#if defined(DC_SCHED)
TEST_P(CollectYieldStress, InvariantsUnderScheduledPreemption) {
  // The scheduled counterpart of the free-running stress above: the same
  // stable-set invariant, but the preemption points are chosen by the
  // deterministic scheduler (the txn_yield_every_loads hook is one of its
  // checkpoint kinds), so a violating interleaving becomes a replayable
  // schedule instead of a once-in-a-blue-moon flake. Bounded bodies: three
  // churn workers with fixed op streams and a checker that collects until
  // the workers are done.
  constexpr Value kStableTag = 0xABCull << 52;
  constexpr Value kChurnTag = 0xDEFull << 52;
  std::vector<Handle> stable;
  for (int i = 0; i < 4; ++i) {
    stable.push_back(
        obj_->register_handle(kStableTag | static_cast<Value>(i)));
  }
  const bool fast_collect_eager =
      std::string(obj_->name()) == "ListFastCollect";
  std::atomic<uint32_t> workers_left{3};
  std::atomic<uint32_t> violations{0};
  std::vector<std::function<void()>> bodies;
  for (int w = 0; w < 3; ++w) {
    bodies.push_back([&, w] {
      util::Xoshiro256 rng(static_cast<uint64_t>(w) * 7919 + 1);
      std::vector<Handle> mine;
      uint64_t seq = 0;
      for (int iters = 1; iters <= 25; ++iters) {
        const uint64_t dice = rng.next_below(10);
        const bool may_churn = !fast_collect_eager || (iters % 8 == 0);
        if (dice < 4 && mine.size() < 8 && may_churn) {
          mine.push_back(obj_->register_handle(kChurnTag | ++seq));
        } else if (dice < 6 && !mine.empty() && may_churn) {
          obj_->deregister(mine.back());
          mine.pop_back();
        } else if (!mine.empty()) {
          obj_->update(mine[rng.next_below(mine.size())],
                       kChurnTag | ++seq);
        }
      }
      for (Handle h : mine) obj_->deregister(h);
      workers_left.fetch_sub(1);
    });
  }
  bodies.push_back([&] {
    std::vector<Value> out;
    do {
      obj_->collect(out);
      std::set<Value> stable_seen;
      for (const Value v : out) {
        const bool is_stable =
            (v >> 52) == (kStableTag >> 52) && (v & ((1ULL << 52) - 1)) < 4;
        const bool is_churn = (v >> 52) == (kChurnTag >> 52);
        if (!is_stable && !is_churn) violations.fetch_add(1);
        if (is_stable) stable_seen.insert(v);
      }
      if (stable_seen.size() != 4u) violations.fetch_add(1);
      sched::yield();
    } while (workers_left.load() != 0);
  });
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    workers_left = 3;
    violations = 0;
    sched::Options o;
    o.seed = seed;
    o.policy = sched::Policy::kPct;
    o.name = "collect_yield_sched";
    auto copy = bodies;
    schedtest::run_scheduled(std::move(o), std::move(copy));
    EXPECT_EQ(violations.load(), 0u)
        << obj_->name() << " seed=" << seed
        << ": a scheduled Collect saw a torn stable set or foreign value";
  }
  std::vector<Value> out;
  for (Handle h : stable) obj_->deregister(h);
  obj_->collect(out);
  EXPECT_TRUE(out.empty()) << obj_->name();
}
#endif  // DC_SCHED

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CollectYieldStress,
    ::testing::Combine(::testing::ValuesIn(all_algorithms()),
                       ::testing::Values(htm::ClockPolicy::kGv1,
                                         htm::ClockPolicy::kGv5)),
    [](const ::testing::TestParamInfo<CollectYieldStress::ParamType>& info) {
      return std::string(std::get<0>(info.param).name) + "_" +
             htm::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace dc::collect
