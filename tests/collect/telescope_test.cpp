// Unit tests for the adaptive step-size controller (§3.4).
#include "collect/telescope.hpp"

#include <gtest/gtest.h>

namespace dc::collect {
namespace {

TEST(StepController, DefaultsToStepOneAdaptive) {
  StepController c;
  EXPECT_EQ(c.step(), 1u);
  EXPECT_EQ(c.mode, StepMode::kAdaptive);
}

TEST(StepController, SeventhStraightCommitDoublesStep) {
  // After a resize the history is empty; the counter reaches 7 (> 6) on the
  // 7th consecutive commit — the paper counts commits-minus-aborts among
  // the relevant (post-resize) attempts, not over a zero-padded window.
  StepController c;
  c.set_step(4);
  for (int i = 0; i < 6; ++i) {
    c.on_commit(4);
    EXPECT_EQ(c.step(), 4u) << "doubled too early at i=" << i;
  }
  c.on_commit(4);  // counter reaches 7 > 6
  EXPECT_EQ(c.step(), 8u);
}

TEST(StepController, HistoryResetsAfterResize) {
  StepController c;
  c.set_step(4);
  for (int i = 0; i < 7; ++i) c.on_commit(4);
  EXPECT_EQ(c.step(), 8u);
  EXPECT_EQ(c.counter(), 0) << "history must reset on resize";
  // Another 7 commits needed for the next doubling.
  for (int i = 0; i < 6; ++i) c.on_commit(8);
  EXPECT_EQ(c.step(), 8u);
  c.on_commit(8);
  EXPECT_EQ(c.step(), 16u);
}

TEST(StepController, AbortsBelowThresholdHalveStep) {
  StepController c;
  c.set_step(16);
  // 3 aborts: counter = -3 < -2 -> halve.
  c.on_abort();
  EXPECT_EQ(c.step(), 16u);
  c.on_abort();
  EXPECT_EQ(c.step(), 16u);
  c.on_abort();
  EXPECT_EQ(c.step(), 8u);
}

TEST(StepController, MixedOutcomesHoldSteady) {
  StepController c;
  c.set_step(8);
  // Alternating commit/abort keeps the counter in (-2, 6]: no resize.
  for (int i = 0; i < 50; ++i) {
    c.on_commit(8);
    c.on_abort();
  }
  EXPECT_EQ(c.step(), 8u);
}

TEST(StepController, AgingOutOldOutcomes) {
  StepController c;
  c.set_step(8);
  // 5 aborts then commits: the aborts age out of the 8-bit window, so the
  // counter eventually recovers to > 6 and the step doubles.
  for (int i = 0; i < 5; ++i) c.on_abort();
  EXPECT_EQ(c.step(), 4u);  // halved once at counter -3 (reset), then -2 ok
  int doubles_at = -1;
  for (int i = 0; i < 20; ++i) {
    c.on_commit(4);
    if (c.step() > 4) {
      doubles_at = i;
      break;
    }
  }
  EXPECT_GE(doubles_at, 0) << "step never recovered";
}

TEST(StepController, ClampedAtMaxStep) {
  StepController c;
  c.set_step(32);
  for (int i = 0; i < 100; ++i) c.on_commit(32);
  EXPECT_EQ(c.step(), StepController::kMaxStep);
}

TEST(StepController, ClampedAtOne) {
  StepController c;
  c.set_step(1);
  for (int i = 0; i < 100; ++i) c.on_abort();
  EXPECT_EQ(c.step(), 1u);
}

TEST(StepController, SetStepClampsInput) {
  StepController c;
  c.set_step(0);
  EXPECT_EQ(c.step(), 1u);
  c.set_step(1000);
  EXPECT_EQ(c.step(), StepController::kMaxStep);
  c.set_step(5);  // non-power-of-two allowed; bucketed by bit_width in stats
  EXPECT_EQ(c.step(), 5u);
}

TEST(StepController, FixedModeNeverChangesStep) {
  StepController c;
  c.mode = StepMode::kFixed;
  c.set_step(16);
  for (int i = 0; i < 50; ++i) c.on_commit(16);
  for (int i = 0; i < 50; ++i) c.on_abort();
  EXPECT_EQ(c.step(), 16u);
}

TEST(StepController, RecordingModeTracksButDoesNotAct) {
  StepController c;
  c.mode = StepMode::kFixedRecording;
  c.set_step(8);
  for (int i = 0; i < 8; ++i) c.on_commit(8);
  EXPECT_EQ(c.step(), 8u);       // no doubling...
  EXPECT_EQ(c.counter(), 8);     // ...but the counter is maintained
}

TEST(StepController, SlotsByStepAttributesToCurrentStep) {
  StepController c;
  c.mode = StepMode::kFixed;
  c.set_step(4);
  c.on_commit(4);
  c.on_commit(3);
  c.set_step(16);
  c.on_commit(16);
  const auto& slots = c.slots_by_step();
  EXPECT_EQ(slots[2], 7u);   // step 4 bucket (log2=2)
  EXPECT_EQ(slots[4], 16u);  // step 16 bucket
  c.reset_stats();
  EXPECT_EQ(c.slots_by_step()[2], 0u);
}

TEST(StepController, CounterMatchesDefinition) {
  StepController c;
  c.mode = StepMode::kFixedRecording;
  c.set_step(8);
  c.on_commit(8);
  c.on_commit(8);
  c.on_abort();
  // 2 commits, 1 abort -> counter = 2 - 1 = 1.
  EXPECT_EQ(c.counter(), 1);
  for (int i = 0; i < 8; ++i) c.on_abort();
  // Window holds the last 8 outcomes: all aborts.
  EXPECT_EQ(c.counter(), -8);
}

}  // namespace
}  // namespace dc::collect
