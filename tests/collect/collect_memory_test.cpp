// Space behaviour (§1.2, §5.5): dynamic algorithms keep shared memory
// proportional to the number of registered handles; static ones inherit
// historical maxima.
#include <gtest/gtest.h>

#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "collect/array_stat_search_no.hpp"
#include "collect/dynamic_baseline.hpp"
#include "collect/fast_collect_list.hpp"
#include "collect/hohrc_list.hpp"
#include "collect/registry.hpp"
#include "memory/pool.hpp"

namespace dc::collect {
namespace {

TEST(CollectMemory, DynamicAlgorithmsShrinkAfterMassDeregister) {
  for (const AlgoInfo& info : all_algorithms()) {
    if (!info.is_dynamic) continue;
    MakeParams params;
    auto obj = info.make(params);
    const std::size_t floor0 = obj->footprint_bytes();
    std::vector<Handle> handles;
    for (Value v = 0; v < 512; ++v) handles.push_back(obj->register_handle(v));
    const std::size_t peak = obj->footprint_bytes();
    EXPECT_GT(peak, floor0) << info.name;
    for (Handle h : handles) obj->deregister(h);
    // A final collect lets list algorithms prune leftover free nodes.
    std::vector<Value> out;
    obj->collect(out);
    const std::size_t after = obj->footprint_bytes();
    EXPECT_LT(after, peak / 4)
        << info.name << ": footprint not proportional to registrations";
  }
}

TEST(CollectMemory, StaticSearchNoRetainsHistoricalHighWater) {
  ArrayStatSearchNo a(256);
  std::vector<Handle> handles;
  for (Value v = 0; v < 200; ++v) handles.push_back(a.register_handle(v));
  EXPECT_GE(a.high_water(), 200);
  for (Handle h : handles) a.deregister(h);
  // Nothing registered, but the scan bound never recedes (the Figure 8
  // behaviour: performance does not recover after shrink).
  EXPECT_GE(a.high_water(), 200);
}

TEST(CollectMemory, HohrcNodesFreedEvenWhenPinnedAtDeregister) {
  HohrcList list;
  Handle a = list.register_handle(1);
  Handle b = list.register_handle(2);
  Handle c = list.register_handle(3);
  EXPECT_EQ(list.node_count(), 3u);
  list.deregister(b);
  EXPECT_EQ(list.node_count(), 2u);  // unpinned: freed immediately
  list.deregister(a);
  list.deregister(c);
  EXPECT_EQ(list.node_count(), 0u);
}

TEST(CollectMemory, FastCollectFreesOnDeregister) {
  mem::pool_flush_thread_cache();
  FastCollectList list;
  const auto before = mem::pool_stats();
  std::vector<Handle> handles;
  for (Value v = 0; v < 100; ++v) handles.push_back(list.register_handle(v));
  EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks + 100);
  for (Handle h : handles) list.deregister(h);
  EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks);
  EXPECT_EQ(list.node_count(), 0u);
}

TEST(CollectMemory, DynamicBaselineReclaimsUnpinnedFreeNodes) {
  DynamicBaseline d;
  std::vector<Handle> handles;
  for (Value v = 0; v < 50; ++v) handles.push_back(d.register_handle(v));
  EXPECT_EQ(d.node_count(), 50u);
  for (Handle h : handles) d.deregister(h);
  // Deregister's backward pass unlinks zero-count unused nodes.
  EXPECT_EQ(d.node_count(), 0u);
}

TEST(CollectMemory, DynamicBaselineReusesFreeNodesBeforeAppending) {
  DynamicBaseline d;
  Handle a = d.register_handle(1);
  Handle b = d.register_handle(2);
  (void)b;
  d.deregister(a);
  EXPECT_EQ(d.node_count(), 2u);  // a's node is free but pinned-reachable
  Handle c = d.register_handle(3);
  EXPECT_EQ(d.node_count(), 2u) << "should reuse the free node, not append";
  EXPECT_EQ(c, a);  // same node recycled
  d.deregister(b);
  d.deregister(c);
  EXPECT_EQ(d.node_count(), 0u);
}

TEST(CollectMemory, HandleCellsAreReleasedOnDeregister) {
  mem::pool_flush_thread_cache();
  ArrayDynAppendDereg a(16);
  const auto before = mem::pool_stats();
  std::vector<Handle> handles;
  for (Value v = 0; v < 64; ++v) handles.push_back(a.register_handle(v));
  for (Handle h : handles) a.deregister(h);
  const auto after = mem::pool_stats();
  // Slot-reference cells and resize arrays all returned (the object itself
  // retains only its min-size array).
  EXPECT_LE(after.live_bytes, before.live_bytes + 4096);
  EXPECT_EQ(after.live_blocks, before.live_blocks);
}

}  // namespace
}  // namespace dc::collect
