// Model-based fuzzing: every algorithm, driven by long random operation
// sequences, must agree exactly with a trivial reference model whenever the
// object is observed single-threadedly (no concurrency -> the §2.3 spec
// collapses to "Collect returns exactly the live bindings").
//
// This is the broadest net for spec violations: slot moves, compaction,
// resizing, node reuse, handle recycling, and telescoping boundaries all
// get exercised by the random walks. The whole matrix runs under both
// global-clock policies (htm/clock.hpp): the walks are the broadest
// coverage of GV5's sloppy stamps and re-sample rule too.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "collect/registry.hpp"
#include "htm/config.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

struct FuzzCase {
  std::string algorithm;
  uint64_t seed;
  int ops;
  htm::ClockPolicy clock;
};

class CollectModelFuzz : public ::testing::TestWithParam<FuzzCase> {
 protected:
  void SetUp() override {
    saved_ = htm::config().clock_policy;
    htm::config().clock_policy = GetParam().clock;
  }
  void TearDown() override { htm::config().clock_policy = saved_; }
  htm::ClockPolicy saved_;
};

TEST_P(CollectModelFuzz, AgreesWithReferenceModel) {
  const FuzzCase& fc = GetParam();
  MakeParams params;
  params.static_capacity = 512;
  params.max_threads = 2;
  params.min_size = 16;
  auto obj = make_algorithm(fc.algorithm, params);
  ASSERT_NE(obj, nullptr);

  util::Xoshiro256 rng(fc.seed);
  std::map<Handle, Value> model;  // live handle -> bound value
  std::vector<Handle> order;      // for random victim selection
  Value next = 1;
  std::vector<Value> out;

  for (int op = 0; op < fc.ops; ++op) {
    const uint64_t dice = rng.next_below(100);
    if (dice < 35 && model.size() < 200) {
      // Register
      Handle h = obj->register_handle(next);
      ASSERT_EQ(model.count(h), 0u)
          << "Register returned a handle already registered (op " << op
          << ")";
      model[h] = next;
      order.push_back(h);
      ++next;
    } else if (dice < 65 && !model.empty()) {
      // Update
      Handle h = order[rng.next_below(order.size())];
      obj->update(h, next);
      model[h] = next;
      ++next;
    } else if (dice < 85 && !model.empty()) {
      // DeRegister
      const std::size_t i = rng.next_below(order.size());
      Handle h = order[i];
      obj->deregister(h);
      model.erase(h);
      order.erase(order.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      // Collect: exact multiset equality with the model (no concurrency,
      // so no flicker and no duplicates are admissible... duplicates per
      // handle are permitted by the spec even sequentially, so compare as
      // sets and also check every returned value is a live binding).
      // Occasionally vary the step size to cross telescoping boundaries.
      if (rng.percent_chance(20)) {
        obj->set_step_size(1u << rng.next_below(6));
      }
      obj->collect(out);
      std::vector<Value> expected;
      expected.reserve(model.size());
      for (const auto& [h, v] : model) expected.push_back(v);
      std::sort(expected.begin(), expected.end());
      std::vector<Value> got(out.begin(), out.end());
      std::sort(got.begin(), got.end());
      got.erase(std::unique(got.begin(), got.end()), got.end());
      ASSERT_EQ(got, expected) << "collect mismatch at op " << op;
    }
  }
  // Final audit + teardown.
  obj->collect(out);
  ASSERT_EQ(out.size(), model.size());
  for (Handle h : order) obj->deregister(h);
  obj->collect(out);
  EXPECT_TRUE(out.empty());
}

std::vector<FuzzCase> make_cases() {
  std::vector<FuzzCase> cases;
  for (const AlgoInfo& info : all_algorithms()) {
    for (uint64_t seed : {11ull, 222ull, 3333ull}) {
      // Static algorithms get shorter walks (bounded capacity).
      const int ops = info.is_dynamic ? 4000 : 1500;
      for (htm::ClockPolicy clock :
           {htm::ClockPolicy::kGv1, htm::ClockPolicy::kGv5}) {
        cases.push_back({info.name, seed, ops, clock});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndSeeds, CollectModelFuzz,
    ::testing::ValuesIn(make_cases()),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return info.param.algorithm + "_seed" +
             std::to_string(info.param.seed) + "_" +
             htm::to_string(info.param.clock);
    });

}  // namespace
}  // namespace dc::collect
