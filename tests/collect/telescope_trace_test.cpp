// Adaptive step-size controller transitions (paper §3.4), observed both
// directly and through the obs step-change trace events. The event
// assertions are conditional on kTraceCompiled so the same test validates
// the trace channel in the DC_TRACE CI leg and the state machine alone in
// the default build.
#include "collect/telescope.hpp"

#include <gtest/gtest.h>

#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "util/thread_id.hpp"

namespace {

using namespace dc;
using collect::StepController;
using collect::StepMode;

// Step-change events emitted by this thread since the last clear.
std::vector<obs::TraceEvent> step_events() {
  std::vector<obs::TraceEvent> out;
  const uint16_t me = static_cast<uint16_t>(util::thread_id());
  for (const obs::TraceEvent& e : obs::snapshot_events()) {
    if (e.tid == me && e.kind == obs::EventKind::kStepChange) out.push_back(e);
  }
  return out;
}

class TelescopeTrace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::clear_trace();
    obs::set_tracing(true);
  }
  void TearDown() override {
    obs::set_tracing(false);
    obs::clear_trace();
  }
};

TEST_F(TelescopeTrace, DoublesWhenCounterExceedsGrowThreshold) {
  StepController c;
  // counter after k straight commits is k; the doubling fires when it
  // passes the paper's +6.
  for (int i = 0; i < 6; ++i) c.on_commit(1);
  EXPECT_EQ(c.step(), 1u);
  c.on_commit(1);
  EXPECT_EQ(c.step(), 2u);
  const auto events = step_events();
  if (obs::kTraceCompiled) {
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].code, static_cast<uint8_t>(obs::StepChange::kGrow));
    EXPECT_EQ(events[0].a, 1u);  // old step
    EXPECT_EQ(events[0].b, 2u);  // new step
  } else {
    EXPECT_EQ(events.size(), 0u);
  }
}

TEST_F(TelescopeTrace, HalvesWhenCounterFallsBelowShrinkThreshold) {
  StepController c;
  c.set_step(8);
  // counter after k straight aborts is -k; the halving fires below -2.
  c.on_abort();
  c.on_abort();
  EXPECT_EQ(c.step(), 8u);
  c.on_abort();
  EXPECT_EQ(c.step(), 4u);
  const auto events = step_events();
  if (obs::kTraceCompiled) {
    // set_step(8) emits a kSet 1->8, then the adaptive shrink 8->4.
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].code, static_cast<uint8_t>(obs::StepChange::kSet));
    EXPECT_EQ(events[0].a, 1u);
    EXPECT_EQ(events[0].b, 8u);
    EXPECT_EQ(events[1].code, static_cast<uint8_t>(obs::StepChange::kShrink));
    EXPECT_EQ(events[1].a, 8u);
    EXPECT_EQ(events[1].b, 4u);
  } else {
    EXPECT_EQ(events.size(), 0u);
  }
}

TEST_F(TelescopeTrace, StepIsCappedAtStoreBufferCapacity) {
  StepController c;
  c.set_step(64);  // clamped to the 32-entry store-buffer bound
  EXPECT_EQ(c.step(), StepController::kMaxStep);
  for (int i = 0; i < 10; ++i) c.on_commit(32);
  EXPECT_EQ(c.step(), StepController::kMaxStep);  // no growth past the cap
  if (obs::kTraceCompiled) {
    // Only the initial kSet; growth at the cap emits nothing.
    const auto events = step_events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].code, static_cast<uint8_t>(obs::StepChange::kSet));
    EXPECT_EQ(events[0].b, StepController::kMaxStep);
  }
}

TEST_F(TelescopeTrace, StepNeverShrinksBelowOne) {
  StepController c;
  for (int i = 0; i < 10; ++i) c.on_abort();
  EXPECT_EQ(c.step(), 1u);
  if (obs::kTraceCompiled) {
    EXPECT_EQ(step_events().size(), 0u);
  }
}

TEST_F(TelescopeTrace, HistoryResetsAfterResize) {
  StepController c;
  for (int i = 0; i < 7; ++i) c.on_commit(1);
  ASSERT_EQ(c.step(), 2u);
  // Only attempts since the resize count (§3.4): 6 more commits reach
  // counter 6, which is not above the threshold, so no second doubling yet.
  EXPECT_EQ(c.counter(), 0);
  for (int i = 0; i < 6; ++i) c.on_commit(2);
  EXPECT_EQ(c.step(), 2u);
  c.on_commit(2);
  EXPECT_EQ(c.step(), 4u);
  if (obs::kTraceCompiled) {
    EXPECT_EQ(step_events().size(), 2u);  // two grow events
  }
}

TEST_F(TelescopeTrace, OldOutcomesAgeOutOfTheWindow) {
  StepController c;
  // 3 aborts at the floor (no shrink possible), then straight commits: the
  // 8-bit window forgets the aborts, so the 8th commit pushes the counter
  // past +6 and doubles the step — without age-out it would stay at -3+k.
  for (int i = 0; i < 3; ++i) c.on_abort();
  for (int i = 0; i < 7; ++i) c.on_commit(1);
  EXPECT_EQ(c.step(), 1u);
  c.on_commit(1);
  EXPECT_EQ(c.step(), 2u);
}

TEST_F(TelescopeTrace, RecordOnlyModeNeverResizes) {
  StepController c;
  c.mode = StepMode::kFixedRecording;
  for (int i = 0; i < 20; ++i) c.on_commit(1);
  EXPECT_EQ(c.step(), 1u);
  EXPECT_GT(c.counter(), 0);  // bookkeeping still runs ("adapt cost")
  if (obs::kTraceCompiled) {
    EXPECT_EQ(step_events().size(), 0u);
  }
}

TEST_F(TelescopeTrace, RedundantSetStepEmitsNothing) {
  StepController c;
  c.set_step(1);  // already 1: no transition, no event
  EXPECT_EQ(c.step(), 1u);
  if (obs::kTraceCompiled) {
    EXPECT_EQ(step_events().size(), 0u);
  }
}

}  // namespace
