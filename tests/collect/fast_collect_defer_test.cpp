// The §3.1.2 deferred-free FastCollect variant: no restarts under
// deregister churn, limbo reclamation at quiescence, and spec conformance
// under simultaneous churn + collect.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "collect/fast_collect_list.hpp"
#include "memory/pool.hpp"

namespace dc::collect {
namespace {

TEST(FastCollectDefer, BasicSemanticsMatchEagerMode) {
  FastCollectList eager(false);
  FastCollectList defer(true);
  for (FastCollectList* list : {&eager, &defer}) {
    Handle a = list->register_handle(1);
    Handle b = list->register_handle(2);
    list->update(a, 10);
    std::vector<Value> out;
    list->collect(out);
    std::set<Value> s(out.begin(), out.end());
    EXPECT_EQ(s.size(), 2u);
    EXPECT_TRUE(s.count(10));
    EXPECT_TRUE(s.count(2));
    list->deregister(a);
    list->collect(out);
    s = {out.begin(), out.end()};
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.count(2));
    list->deregister(b);
  }
}

TEST(FastCollectDefer, DeferredNodesFreedByQuiescentCollect) {
  mem::pool_flush_thread_cache();
  const auto before = mem::pool_stats();
  {
    FastCollectList list(true);
    std::vector<Handle> handles;
    for (Value v = 0; v < 50; ++v) handles.push_back(list.register_handle(v));
    for (Handle h : handles) list.deregister(h);
    // Nodes are parked in limbo, not freed yet: still live in the pool.
    EXPECT_GE(mem::pool_stats().live_blocks, before.live_blocks + 50);
    // A collect (the only one active) frees the limbo at its end.
    std::vector<Value> out;
    list.collect(out);
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks + 1);  // head
  }
  EXPECT_EQ(mem::pool_stats().live_blocks, before.live_blocks);
}

TEST(FastCollectDefer, NoRestartsUnderDeregisterChurn) {
  // The whole point of the variant: eager mode restarts on every concurrent
  // deregister; deferred mode must finish collects without restarting.
  FastCollectList list(true);
  std::vector<Handle> stable;
  for (Value v = 100; v < 132; ++v) stable.push_back(list.register_handle(v));
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    Value v = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      Handle h = list.register_handle(v++);
      list.deregister(h);
    }
  });
  std::vector<Value> out;
  for (int i = 0; i < 300; ++i) {
    list.collect(out);
    // Every stable handle present in every collect.
    std::set<Value> s(out.begin(), out.end());
    for (Value v = 100; v < 132; ++v) ASSERT_TRUE(s.count(v)) << v;
  }
  stop.store(true);
  churner.join();
  EXPECT_EQ(list.restarts(), 0u);
  for (Handle h : stable) list.deregister(h);
}

TEST(FastCollectDefer, EagerModeDoesRestartUnderChurn) {
  // Control experiment for the test above. Mid-transaction yields make the
  // collect actually overlap the churner on a single-core host (otherwise a
  // whole collect completes within one scheduler quantum and never observes
  // a concurrent deregister).
  const auto saved = htm::config();
  htm::config().txn_yield_every_loads = 4;
  FastCollectList list(false);
  std::vector<Handle> stable;
  for (Value v = 100; v < 132; ++v) stable.push_back(list.register_handle(v));
  // The churner must be finite: under *sustained* churn an eager-mode
  // Collect legitimately never completes ("Collects can be prevented from
  // making any progress by concurrent DeRegisters", §3.1.2) — which is the
  // very progress problem the deferred variant exists to solve.
  std::thread churner([&] {
    Value v = 1000;
    for (int i = 0; i < 5000; ++i) {
      Handle h = list.register_handle(v++);
      list.deregister(h);
    }
  });
  list.set_step_size(8);  // several transactions per collect
  std::vector<Value> out;
  for (int i = 0; i < 100000 && list.restarts() == 0; ++i) list.collect(out);
  churner.join();
  EXPECT_GT(list.restarts(), 0u);
  for (Handle h : stable) list.deregister(h);
  htm::config() = saved;
}

TEST(FastCollectDefer, OverlappingCollectsDeferFreeing) {
  // While one collect is active, another collect's completion must not free
  // limbo nodes (active count > 1 at its end is possible; at least, no
  // crash and eventual reclamation once quiescent).
  FastCollectList list(true);
  std::vector<Handle> stable;
  for (Value v = 0; v < 16; ++v) stable.push_back(list.register_handle(v));
  std::atomic<bool> stop{false};
  std::vector<std::thread> team;
  for (int t = 0; t < 3; ++t) {
    team.emplace_back([&] {
      std::vector<Value> out;
      while (!stop.load(std::memory_order_relaxed)) {
        list.collect(out);
      }
    });
  }
  std::thread churner([&] {
    Value v = 1000;
    for (int i = 0; i < 3000; ++i) {
      Handle h = list.register_handle(v++);
      list.deregister(h);
    }
  });
  churner.join();
  stop.store(true);
  for (auto& t : team) t.join();
  // Quiescent collect reclaims whatever remains parked.
  std::vector<Value> out;
  list.collect(out);
  EXPECT_EQ(out.size(), 16u);
  EXPECT_EQ(list.node_count(), 16u);
  for (Handle h : stable) list.deregister(h);
}

TEST(FastCollectSerialized, StarvedCollectFallsBackToLockAndCompletes) {
  // Sustained churn that would starve the eager Collect forever: the §6
  // serialized fallback must kick in and return an exact result.
  const auto saved = htm::config();
  htm::config().txn_yield_every_loads = 4;
  {
    FastCollectList list(false);
    std::vector<Handle> stable;
    for (Value v = 100; v < 140; ++v) {
      stable.push_back(list.register_handle(v));
    }
    std::atomic<bool> stop{false};
    std::thread churner([&] {
      Value v = 1000;
      while (!stop.load(std::memory_order_relaxed)) {
        Handle h = list.register_handle(v++);
        list.deregister(h);
      }
    });
    list.set_step_size(4);  // many transactions per collect: maximal churn
    std::vector<Value> out;
    for (int i = 0; i < 50; ++i) {
      list.collect(out);  // must terminate despite endless churn
      std::set<Value> s(out.begin(), out.end());
      for (Value v = 100; v < 140; ++v) ASSERT_TRUE(s.count(v)) << v;
    }
    stop.store(true);
    churner.join();
    // Under this much churn at least one collect should have serialized
    // (not guaranteed by spec, but by construction of this workload).
    EXPECT_GT(list.serialized_collects() + list.restarts(), 0u);
    for (Handle h : stable) list.deregister(h);
  }
  htm::config() = saved;
}

}  // namespace
}  // namespace dc::collect
