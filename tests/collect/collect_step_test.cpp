// Telescoping behaviour of the HTM algorithms' Collect: fixed step sizes,
// the store-budget cap, adaptive mode, and step statistics (Figures 5/6
// machinery).
#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "collect/registry.hpp"
#include "htm/config.hpp"
#include "htm/stats.hpp"

namespace dc::collect {
namespace {

class CollectStep : public ::testing::TestWithParam<AlgoInfo> {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 4;  // StaticBaseline region = 256 handles/thread
    obj_ = GetParam().make(params);
  }
  void TearDown() override { htm::config() = saved_; }
  std::unique_ptr<DynamicCollect> obj_;
  htm::Config saved_;
};

TEST_P(CollectStep, AllFixedStepSizesReturnTheSameSet) {
  std::vector<Handle> handles;
  for (Value v = 1; v <= 100; ++v) handles.push_back(obj_->register_handle(v));
  for (const uint32_t step : {1u, 2u, 4u, 8u, 16u, 32u}) {
    obj_->set_step_size(step);
    std::vector<Value> out;
    obj_->collect(out);
    std::set<Value> s(out.begin(), out.end());
    EXPECT_EQ(s.size(), 100u) << "step " << step;
    for (Value v = 1; v <= 100; ++v) EXPECT_TRUE(s.count(v)) << v;
  }
  for (Handle h : handles) obj_->deregister(h);
}

TEST_P(CollectStep, StepStatsAccountForEveryRegisteredSlot) {
  std::vector<Handle> handles;
  for (Value v = 1; v <= 64; ++v) handles.push_back(obj_->register_handle(v));
  obj_->set_step_size(8);
  obj_->reset_step_stats();
  std::vector<Value> out;
  obj_->collect(out);
  const auto slots = obj_->slots_by_step();
  const uint64_t total = std::accumulate(slots.begin(), slots.end(), 0ull);
  if (GetParam().telescoped) {
    EXPECT_EQ(total, out.size());
    ASSERT_GE(slots.size(), 4u);
    EXPECT_EQ(slots[3], total) << "all slots should fall in the step-8 bucket";
  } else {
    EXPECT_EQ(total, 0u) << "non-telescoped Collect has no step stats";
  }
  for (Handle h : handles) obj_->deregister(h);
}

TEST_P(CollectStep, AdaptiveModeGrowsStepWhenUncontended) {
  if (!GetParam().telescoped) GTEST_SKIP() << "no transactions in Collect";
  std::vector<Handle> handles;
  for (Value v = 1; v <= 200; ++v) handles.push_back(obj_->register_handle(v));
  obj_->set_adaptive(true);
  obj_->reset_step_stats();
  std::vector<Value> out;
  for (int i = 0; i < 50; ++i) obj_->collect(out);
  const auto slots = obj_->slots_by_step();
  // With no contention the controller should reach the maximum step; the
  // bulk of the slots must have been collected with steps > 8.
  const uint64_t total = std::accumulate(slots.begin(), slots.end(), 0ull);
  const uint64_t big = slots[4] + slots[5];  // steps 16 and 32
  EXPECT_GT(total, 0u);
  EXPECT_GT(big * 2, total)
      << "adaptive controller failed to grow the step size";
  for (Handle h : handles) obj_->deregister(h);
}

TEST_P(CollectStep, StoreBudgetBoundsTelescopedTransactions) {
  if (!GetParam().telescoped) GTEST_SKIP();
  // With a tiny store buffer, step-32 Collect transactions cannot commit as
  // a single chunk; the implementation must still complete (splitting into
  // budget-sized pieces or falling back), and return the full set.
  htm::config().store_buffer_capacity = 8;
  std::vector<Handle> handles;
  for (Value v = 1; v <= 64; ++v) handles.push_back(obj_->register_handle(v));
  obj_->set_step_size(32);
  std::vector<Value> out;
  obj_->collect(out);
  std::set<Value> s(out.begin(), out.end());
  EXPECT_EQ(s.size(), 64u);
  htm::config().store_buffer_capacity = 32;
  for (Handle h : handles) obj_->deregister(h);
}

TEST_P(CollectStep, AdaptiveCollectUnderConcurrentUpdates) {
  if (!GetParam().telescoped) GTEST_SKIP();
  std::vector<Handle> handles;
  for (Value v = 1; v <= 64; ++v) handles.push_back(obj_->register_handle(v));
  obj_->set_adaptive(true);
  std::atomic<bool> stop{false};
  std::thread updater([&] {
    uint64_t x = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      obj_->update(handles[x % handles.size()], 1 + x % 64);
      ++x;
    }
  });
  std::vector<Value> out;
  for (int i = 0; i < 100; ++i) {
    obj_->collect(out);
    // Every returned value is one some handle held (1..64).
    for (const Value v : out) {
      EXPECT_GE(v, 1u);
      EXPECT_LE(v, 64u);
    }
    EXPECT_GE(out.size(), 64u);  // no handle missed (duplicates possible)
  }
  stop.store(true);
  updater.join();
  for (Handle h : handles) obj_->deregister(h);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CollectStep, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<AlgoInfo>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dc::collect
