// Dynamic Collect specification conformance (§2.3), parameterized over all
// eight implementations.
//
// Key spec obligations under test:
//  * a Collect returns a value for every handle whose last binding precedes
//    it (and is not deregistered);
//  * every returned value was bound by the handle's last preceding binding
//    or by a concurrent operation;
//  * duplicates per handle are permitted; missing a handle is not.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "collect/registry.hpp"
#include "htm/config.hpp"
#include "util/barrier.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

class CollectSpec : public ::testing::TestWithParam<AlgoInfo> {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 16;
    obj_ = GetParam().make(params);
  }
  void TearDown() override { htm::config() = saved_; }

  std::set<Value> collect_set() {
    std::vector<Value> out;
    obj_->collect(out);
    return {out.begin(), out.end()};
  }

  std::unique_ptr<DynamicCollect> obj_;
  htm::Config saved_;
};

TEST_P(CollectSpec, EmptyObjectCollectsNothing) {
  EXPECT_TRUE(collect_set().empty());
}

TEST_P(CollectSpec, RegisterThenCollectReturnsValue) {
  obj_->register_handle(41);
  const auto s = collect_set();
  EXPECT_TRUE(s.count(41)) << obj_->name();
  EXPECT_EQ(s.size(), 1u);
}

TEST_P(CollectSpec, UpdateRebindsHandle) {
  Handle h = obj_->register_handle(1);
  obj_->update(h, 2);
  const auto s = collect_set();
  EXPECT_TRUE(s.count(2));
  EXPECT_FALSE(s.count(1)) << "stale value after completed update";
}

TEST_P(CollectSpec, DeregisterRemovesBinding) {
  Handle h = obj_->register_handle(7);
  obj_->deregister(h);
  EXPECT_TRUE(collect_set().empty());
}

TEST_P(CollectSpec, ManyHandlesAllPresent) {
  std::vector<Handle> handles;
  for (Value v = 100; v < 164; ++v) handles.push_back(obj_->register_handle(v));
  const auto s = collect_set();
  for (Value v = 100; v < 164; ++v) EXPECT_TRUE(s.count(v)) << v;
  EXPECT_EQ(s.size(), 64u);
  for (Handle h : handles) obj_->deregister(h);
  EXPECT_TRUE(collect_set().empty());
}

TEST_P(CollectSpec, DeregisterSubsetKeepsRest) {
  std::vector<Handle> handles;
  for (Value v = 0; v < 32; ++v) handles.push_back(obj_->register_handle(v + 1));
  for (int i = 0; i < 32; i += 2) obj_->deregister(handles[i]);  // evens out
  const auto s = collect_set();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(s.count(static_cast<Value>(i + 1)), (i % 2 == 0) ? 0u : 1u) << i;
  }
  for (int i = 1; i < 32; i += 2) obj_->deregister(handles[i]);
}

TEST_P(CollectSpec, HandleReuseAfterDeregister) {
  for (int round = 0; round < 50; ++round) {
    Handle h = obj_->register_handle(static_cast<Value>(round + 1));
    const auto s = collect_set();
    EXPECT_EQ(s.size(), 1u);
    EXPECT_TRUE(s.count(static_cast<Value>(round + 1)));
    obj_->deregister(h);
  }
  EXPECT_TRUE(collect_set().empty());
}

TEST_P(CollectSpec, InterleavedUpdatesVisibleInOrder) {
  Handle a = obj_->register_handle(10);
  Handle b = obj_->register_handle(20);
  obj_->update(a, 11);
  obj_->update(b, 21);
  obj_->update(a, 12);
  auto s = collect_set();
  EXPECT_TRUE(s.count(12));
  EXPECT_TRUE(s.count(21));
  EXPECT_EQ(s.size(), 2u);
  obj_->deregister(a);
  s = collect_set();
  EXPECT_TRUE(s.count(21));
  EXPECT_EQ(s.size(), 1u);
  obj_->deregister(b);
}

TEST_P(CollectSpec, StablyBoundHandlesNeverMissedUnderUpdates) {
  // Writers continuously update their own handles; a collector runs
  // concurrently. Handles are registered before the collector starts and
  // never deregistered, so EVERY collect must return >= 1 value per handle,
  // and any returned value must be one the handle plausibly held
  // (monotonically increasing per handle; values encode handle id).
  constexpr int kWriters = 3;
  constexpr int kHandlesPerWriter = 4;
  constexpr Value kIdShift = 32;
  struct Published {
    std::atomic<Value> floor{0};  // last value definitely written
  };
  Published published[kWriters * kHandlesPerWriter];
  std::vector<Handle> handles(kWriters * kHandlesPerWriter);
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(kWriters + 1);

  // Register everything up front, from this thread, value = (id<<32)|0.
  for (int i = 0; i < kWriters * kHandlesPerWriter; ++i) {
    handles[static_cast<std::size_t>(i)] =
        obj_->register_handle(static_cast<Value>(i) << kIdShift);
  }

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      barrier.arrive_and_wait();
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++seq;
        for (int k = 0; k < kHandlesPerWriter; ++k) {
          const int id = w * kHandlesPerWriter + k;
          const Value v = (static_cast<Value>(id) << kIdShift) | seq;
          obj_->update(handles[static_cast<std::size_t>(id)], v);
          published[id].floor.store(seq, std::memory_order_release);
        }
      }
    });
  }

  barrier.arrive_and_wait();
  std::vector<Value> out;
  for (int round = 0; round < 200; ++round) {
    // Floors sampled before the collect: any value returned for handle id
    // must have seq >= floor (older bindings are overwritten, and a
    // completed update precedes the collect).
    uint64_t floors[kWriters * kHandlesPerWriter];
    for (int i = 0; i < kWriters * kHandlesPerWriter; ++i) {
      floors[i] = published[i].floor.load(std::memory_order_acquire);
    }
    obj_->collect(out);
    bool seen[kWriters * kHandlesPerWriter] = {};
    for (const Value v : out) {
      const int id = static_cast<int>(v >> kIdShift);
      ASSERT_GE(id, 0);
      ASSERT_LT(id, kWriters * kHandlesPerWriter);
      const uint64_t seq = v & 0xffffffffULL;
      EXPECT_GE(seq, floors[id])
          << obj_->name() << ": stale value for handle " << id;
      seen[id] = true;
    }
    for (int i = 0; i < kWriters * kHandlesPerWriter; ++i) {
      EXPECT_TRUE(seen[i]) << obj_->name() << ": handle " << i
                           << " missed by collect";
    }
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  for (Handle h : handles) obj_->deregister(h);
}

TEST_P(CollectSpec, ChurnStressNeverReturnsForeignValues) {
  // Threads register/deregister/update their own handles; collects run
  // concurrently. Every value a collect returns must be one some handle
  // was bound to at some point during the run (tagged values), and stable
  // handles must always be present.
  constexpr int kChurners = 2;
  constexpr Value kStableTag = 0xABC0000000000000ULL;
  constexpr Value kChurnTag = 0xDEF0000000000000ULL;
  std::vector<Handle> stable;
  for (int i = 0; i < 8; ++i) {
    stable.push_back(obj_->register_handle(kStableTag | static_cast<Value>(i)));
  }
  std::atomic<bool> stop{false};
  util::SpinBarrier barrier(kChurners + 1);
  std::vector<std::thread> churners;
  for (int c = 0; c < kChurners; ++c) {
    churners.emplace_back([&, c] {
      barrier.arrive_and_wait();
      util::Xoshiro256 rng(static_cast<uint64_t>(c) + 1);
      std::vector<Handle> mine;
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (mine.size() < 6 && rng.percent_chance(50)) {
          mine.push_back(obj_->register_handle(kChurnTag | ++seq));
        } else if (!mine.empty() && rng.percent_chance(30)) {
          obj_->deregister(mine.back());
          mine.pop_back();
        } else if (!mine.empty()) {
          obj_->update(mine[rng.next_below(mine.size())], kChurnTag | ++seq);
        }
      }
      for (Handle h : mine) obj_->deregister(h);
    });
  }
  barrier.arrive_and_wait();
  std::vector<Value> out;
  for (int round = 0; round < 100; ++round) {
    obj_->collect(out);
    std::set<Value> stable_seen;
    for (const Value v : out) {
      const bool is_stable =
          (v >> 52) == (kStableTag >> 52) && (v & ((1ULL << 52) - 1)) < 8;
      const bool is_churn = (v >> 52) == (kChurnTag >> 52);
      EXPECT_TRUE(is_stable || is_churn)
          << obj_->name() << ": foreign value 0x" << std::hex << v;
      if (is_stable) stable_seen.insert(v);
    }
    EXPECT_EQ(stable_seen.size(), 8u)
        << obj_->name() << ": stable handle missed";
  }
  stop.store(true);
  for (auto& t : churners) t.join();
  for (Handle h : stable) obj_->deregister(h);
  const auto s = collect_set();
  EXPECT_TRUE(s.empty()) << obj_->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, CollectSpec, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<AlgoInfo>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace dc::collect
