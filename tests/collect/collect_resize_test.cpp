// Resizing behaviour of the dynamic array algorithms: the §4.1 invariant
// max(count, MIN_SIZE) <= capacity <= max(4*count, MIN_SIZE), binding
// preservation across moves, and cooperative-copy integrity.
#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "collect/array_dyn_append_dereg.hpp"
#include "collect/array_dyn_search_resize.hpp"
#include "util/rng.hpp"

namespace dc::collect {
namespace {

template <class Algo>
void check_invariant(const Algo& a) {
  const int32_t count = a.count_now();
  const int32_t capacity = a.capacity_now();
  const int32_t min_size = 16;
  EXPECT_GE(capacity, count);
  EXPECT_GE(capacity, min_size);
  EXPECT_LE(capacity, std::max(4 * count, min_size))
      << "capacity not proportional to count";
}

TEST(ArrayDynAppendDeregResize, GrowsWhenFull) {
  ArrayDynAppendDereg a(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 17; ++v) {
    handles.push_back(a.register_handle(v));
    check_invariant(a);
  }
  EXPECT_GE(a.capacity_now(), 17);
  // Values survive the resize.
  std::vector<Value> out;
  a.collect(out);
  std::set<Value> s(out.begin(), out.end());
  for (Value v = 0; v < 17; ++v) EXPECT_TRUE(s.count(v)) << v;
  for (Handle h : handles) a.deregister(h);
}

TEST(ArrayDynAppendDeregResize, ShrinksWhenSparse) {
  ArrayDynAppendDereg a(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 256; ++v) handles.push_back(a.register_handle(v));
  const int32_t peak = a.capacity_now();
  EXPECT_GE(peak, 256);
  // Deregister from the back (handles move under compaction; back order
  // keeps this test independent of which slot moved where).
  while (handles.size() > 4) {
    a.deregister(handles.back());
    handles.pop_back();
    check_invariant(a);
  }
  EXPECT_LE(a.capacity_now(), 16 * 4);
  for (Handle h : handles) a.deregister(h);
}

TEST(ArrayDynAppendDeregResize, UpdateFollowsMovedSlot) {
  ArrayDynAppendDereg a(16);
  // h0 sits at slot 0; deregistering it moves the last slot into slot 0.
  Handle h0 = a.register_handle(100);
  Handle h1 = a.register_handle(101);
  Handle h2 = a.register_handle(102);
  a.deregister(h0);  // h2's storage moves into slot 0
  a.update(h2, 202); // must follow the move through the slot reference
  std::vector<Value> out;
  a.collect(out);
  std::set<Value> s(out.begin(), out.end());
  EXPECT_TRUE(s.count(101));
  EXPECT_TRUE(s.count(202));
  EXPECT_FALSE(s.count(102));
  EXPECT_EQ(s.size(), 2u);
  a.deregister(h1);
  a.deregister(h2);
}

TEST(ArrayDynAppendDeregResize, UpdatesSurviveGrowCopy) {
  ArrayDynAppendDereg a(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 64; ++v) handles.push_back(a.register_handle(v));
  for (std::size_t i = 0; i < handles.size(); ++i) {
    a.update(handles[i], 1000 + static_cast<Value>(i));
  }
  std::vector<Value> out;
  a.collect(out);
  std::set<Value> s(out.begin(), out.end());
  for (std::size_t i = 0; i < handles.size(); ++i) {
    EXPECT_TRUE(s.count(1000 + static_cast<Value>(i))) << i;
  }
  for (Handle h : handles) a.deregister(h);
}

TEST(ArrayDynAppendDeregResize, RandomChurnMaintainsInvariantAndBindings) {
  ArrayDynAppendDereg a(16);
  util::Xoshiro256 rng(42);
  std::vector<std::pair<Handle, Value>> live;
  Value next = 1;
  for (int op = 0; op < 3000; ++op) {
    const uint64_t dice = rng.next_below(10);
    if (dice < 5 || live.empty()) {
      live.emplace_back(a.register_handle(next), next);
      ++next;
    } else if (dice < 8) {
      const std::size_t i = rng.next_below(live.size());
      a.update(live[i].first, next);
      live[i].second = next;
      ++next;
    } else {
      const std::size_t i = rng.next_below(live.size());
      a.deregister(live[i].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    check_invariant(a);
    if (op % 200 == 0) {
      std::vector<Value> out;
      a.collect(out);
      std::set<Value> s(out.begin(), out.end());
      EXPECT_EQ(s.size(), live.size()) << "op " << op;
      for (const auto& [h, v] : live) EXPECT_TRUE(s.count(v)) << v;
    }
  }
  for (const auto& [h, v] : live) a.deregister(h);
}

TEST(ArrayDynSearchResizeResize, GrowsAndCompacts) {
  ArrayDynSearchResize a(16);
  std::vector<Handle> handles;
  for (Value v = 0; v < 40; ++v) handles.push_back(a.register_handle(v));
  EXPECT_GE(a.capacity_now(), 40);
  // Deregister every other handle: holes accumulate, high water unchanged.
  for (int i = 0; i < 40; i += 2) a.deregister(handles[static_cast<std::size_t>(i)]);
  const int32_t high_before = a.high_water();
  EXPECT_GE(high_before, 20);
  std::vector<Value> out;
  a.collect(out);
  EXPECT_EQ(std::set<Value>(out.begin(), out.end()).size(), 20u);
  // Keep deregistering until a shrink fires; compaction resets high water.
  std::vector<Handle> rest;
  for (int i = 1; i < 40; i += 2) rest.push_back(handles[static_cast<std::size_t>(i)]);
  while (rest.size() > 4) {
    a.deregister(rest.back());
    rest.pop_back();
  }
  EXPECT_LE(a.capacity_now(), 64);
  EXPECT_LE(a.high_water(), a.capacity_now());
  a.collect(out);
  EXPECT_EQ(std::set<Value>(out.begin(), out.end()).size(), rest.size());
  for (Handle h : rest) a.deregister(h);
}

TEST(ArrayDynSearchResizeResize, RandomChurnMaintainsInvariantAndBindings) {
  ArrayDynSearchResize a(16);
  util::Xoshiro256 rng(7);
  std::vector<std::pair<Handle, Value>> live;
  Value next = 1;
  for (int op = 0; op < 3000; ++op) {
    const uint64_t dice = rng.next_below(10);
    if (dice < 5 || live.empty()) {
      live.emplace_back(a.register_handle(next), next);
      ++next;
    } else if (dice < 8) {
      const std::size_t i = rng.next_below(live.size());
      a.update(live[i].first, next);
      live[i].second = next;
      ++next;
    } else {
      const std::size_t i = rng.next_below(live.size());
      a.deregister(live[i].first);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    }
    const int32_t count = a.count_now();
    const int32_t capacity = a.capacity_now();
    EXPECT_GE(capacity, count);
    EXPECT_LE(capacity, std::max(4 * count, 16));
    if (op % 200 == 0) {
      std::vector<Value> out;
      a.collect(out);
      std::set<Value> s(out.begin(), out.end());
      EXPECT_EQ(s.size(), live.size()) << "op " << op;
      for (const auto& [h, v] : live) EXPECT_TRUE(s.count(v)) << v;
    }
  }
  for (const auto& [h, v] : live) a.deregister(h);
}

TEST(ArrayDynAppendDeregResize, ConcurrentRegistersDuringResizeAllLand) {
  // Hammer register/deregister from several threads so resizes interleave
  // with registrations (including the §4.2 register-during-copy fast path),
  // then verify every surviving handle is collected.
  ArrayDynAppendDereg a(16);
  constexpr int kThreads = 4;
  constexpr int kOps = 500;
  std::vector<std::vector<std::pair<Handle, Value>>> survivors(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<uint64_t>(t) + 99);
      std::vector<std::pair<Handle, Value>> mine;
      Value next = (static_cast<Value>(t) << 32) | 1;
      for (int op = 0; op < kOps; ++op) {
        if (mine.size() < 20 && rng.percent_chance(60)) {
          mine.emplace_back(a.register_handle(next), next);
          ++next;
        } else if (!mine.empty()) {
          a.deregister(mine.back().first);
          mine.pop_back();
        }
      }
      survivors[static_cast<std::size_t>(t)] = std::move(mine);
    });
  }
  for (auto& t : threads) t.join();
  std::vector<Value> out;
  a.collect(out);
  std::set<Value> s(out.begin(), out.end());
  std::size_t total = 0;
  for (const auto& mine : survivors) {
    total += mine.size();
    for (const auto& [h, v] : mine) EXPECT_TRUE(s.count(v)) << std::hex << v;
  }
  EXPECT_EQ(s.size(), total);
  check_invariant(a);
  for (auto& mine : survivors) {
    for (const auto& [h, v] : mine) a.deregister(h);
  }
  EXPECT_EQ(a.count_now(), 0);
}

}  // namespace
}  // namespace dc::collect
