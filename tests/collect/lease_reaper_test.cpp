// Lease-based orphan reclamation (collect/lease.hpp): handles registered by
// a thread that the crash injector killed must be reaped by survivors so
// the Collect returns to the live-thread footprint; live leases must never
// be touched; and a death *inside* a DeRegister must leave the handle in a
// state the reaper can finish from scratch.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "collect/lease.hpp"
#include "collect/registry.hpp"
#include "htm/crash.hpp"
#include "htm/htm.hpp"
#include "memory/pool.hpp"

namespace dc::collect {
namespace {

class LeaseReaper : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = htm::config();
    htm::crash::reset_all();
    htm::reset_stats();
    htm::reset_storm_sites();
    MakeParams params;
    params.static_capacity = 1024;
    params.max_threads = 16;
    col_ = std::make_unique<CrashTolerantCollect>(
        make_algorithm("ListFastCollect", params));
  }
  void TearDown() override {
    htm::config() = saved_;
    htm::crash::reset_all();
  }

  std::set<Value> collect_set() {
    std::vector<Value> out;
    col_->collect(out);
    return {out.begin(), out.end()};
  }

  std::unique_ptr<CrashTolerantCollect> col_;
  htm::Config saved_;
};

TEST_F(LeaseReaper, ForwardsTheCollectInterface) {
  Handle h = col_->register_handle(41);
  EXPECT_EQ(col_->lease_count(), 1u);
  EXPECT_TRUE(collect_set().count(41));
  col_->update(h, 42);
  EXPECT_TRUE(collect_set().count(42));
  col_->deregister(h);
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_TRUE(collect_set().empty());
  EXPECT_TRUE(std::string(col_->name()).find("CrashTolerant") == 0);
}

TEST_F(LeaseReaper, LiveLeasesAreNeverReaped) {
  Handle h = col_->register_handle(7);
  EXPECT_EQ(col_->orphan_count(), 0u);
  EXPECT_EQ(col_->reap_orphans(), 0u);
  EXPECT_EQ(col_->lease_count(), 1u);
  EXPECT_TRUE(collect_set().count(7));
  col_->deregister(h);
}

TEST_F(LeaseReaper, DeadThreadsHandlesAreReaped) {
  // A victim registers three handles, then dies mid-churn. The survivor
  // must see three orphaned leases, reap them through the inner DeRegister
  // path, and shrink the Collect back to its own footprint.
  Handle mine = col_->register_handle(1000);
  std::thread victim([&] {
    htm::crash::reset_thread();
    const bool survived = htm::crash::run_victim([&] {
      col_->register_handle(1);
      col_->register_handle(2);
      col_->register_handle(3);
      // Die in a later atomic block, mid-churn. (The churn must be
      // register/deregister: FastCollect's Update is non-transactional, so
      // an update-only loop would never cross a crash point.)
      htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                /*blocks_from_now=*/2, /*after_ops=*/0);
      for (uint64_t i = 0;; ++i) {
        Handle t = col_->register_handle(100 + i);
        col_->deregister(t);
      }
    });
    EXPECT_FALSE(survived);
  });
  victim.join();
  EXPECT_EQ(col_->lease_count(), 4u);
  EXPECT_EQ(col_->orphan_count(), 3u);
  EXPECT_EQ(collect_set().size(), 4u);
  const std::size_t reaped = col_->reap_orphans();
  EXPECT_EQ(reaped, 3u);
  EXPECT_EQ(col_->lease_count(), 1u);
  EXPECT_EQ(col_->orphan_count(), 0u);
  const auto after = collect_set();
  EXPECT_EQ(after.size(), 1u);
  EXPECT_TRUE(after.count(1000));
  EXPECT_EQ(htm::aggregate_stats().orphans_reaped, 3u);
  col_->deregister(mine);
}

TEST_F(LeaseReaper, DeathInsideDeregisterIsFinishedByTheReaper) {
  // The victim dies at the commit entry of its DeRegister's claiming
  // transaction: the deregister never took effect, the lease survives, and
  // the reaper must be able to run the whole DeRegister again from scratch.
  std::thread victim([&] {
    htm::crash::reset_thread();
    const bool survived = htm::crash::run_victim([&] {
      Handle h = col_->register_handle(77);
      htm::crash::schedule_self(htm::crash::Point::kCommitEntry,
                                /*blocks_from_now=*/0, /*after_ops=*/~0u);
      col_->deregister(h);
    });
    EXPECT_FALSE(survived);
  });
  victim.join();
  EXPECT_EQ(col_->lease_count(), 1u);
  EXPECT_EQ(col_->orphan_count(), 1u);
  EXPECT_TRUE(collect_set().count(77)) << "the half-done deregister must not "
                                          "have taken effect";
  EXPECT_EQ(col_->reap_orphans(), 1u);
  EXPECT_TRUE(collect_set().empty());
  EXPECT_EQ(col_->lease_count(), 0u);
}

TEST_F(LeaseReaper, DeathWhileHoldingTheLockStillReapsClean) {
  // The hardest composite: the victim dies holding the TLE fallback lock
  // with registered handles outstanding. The reaper's own transactions must
  // first steal the abandoned lock, then complete the orphan deregisters.
  std::thread victim([&] {
    htm::crash::reset_thread();
    const bool survived = htm::crash::run_victim([&] {
      col_->register_handle(5);
      col_->register_handle(6);
      htm::crash::schedule_self(htm::crash::Point::kLockHeld);
      uint64_t w = 0;
      htm::atomic([&](htm::Txn& txn) { txn.store(&w, uint64_t{1}); });
    });
    EXPECT_FALSE(survived);
  });
  victim.join();
  EXPECT_NE(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
  EXPECT_EQ(col_->reap_orphans(), 2u);
  EXPECT_TRUE(collect_set().empty());
  const htm::TxnStats s = htm::aggregate_stats();
  EXPECT_GE(s.lock_recoveries, 1u);
  EXPECT_EQ(s.orphans_reaped, 2u);
  EXPECT_EQ(htm::nontxn_load(htm::detail::tle_lock_word()), 0u);
}

TEST_F(LeaseReaper, DeadThreadsLocalCacheIsReapedWithItsHandles) {
  // A victim churns allocate/free so its local pool cache holds recycled
  // blocks, then dies. A real dead thread performs no cleanup, so those
  // blocks are stranded — invisible to every survivor's allocations — until
  // the same reaper pass that recovers the victim's handles returns them to
  // the global free lists (lease.cpp calls pool_reap_stranded_caches after
  // its lease sweep).
  std::thread victim([&] {
    htm::crash::reset_thread();
    const bool survived = htm::crash::run_victim([&] {
      // Park blocks in the local cache: frees go there, not to the pool.
      std::vector<void*> blocks;
      for (int i = 0; i < 32; ++i) blocks.push_back(mem::pool_allocate(64));
      for (void* p : blocks) mem::pool_deallocate(p, 64);
      htm::crash::schedule_self(htm::crash::Point::kTxnOp,
                                /*blocks_from_now=*/1, /*after_ops=*/0);
      for (uint64_t i = 0;; ++i) {
        Handle t = col_->register_handle(500 + i);
        col_->deregister(t);
      }
    });
    EXPECT_FALSE(survived);
  });
  victim.join();
  const uint64_t leak = mem::pool_stranded_blocks();
  EXPECT_GT(leak, 0u) << "the dead victim's cache must strand, not flush";
  const auto before = mem::pool_stats();
  col_->reap_orphans();
  EXPECT_EQ(mem::pool_stranded_blocks(), 0u);
  const auto after = mem::pool_stats();
  EXPECT_EQ(after.cache_blocks_reaped - before.cache_blocks_reaped, leak);
  EXPECT_LE(after.cache_blocks_reaped, after.cache_blocks_stranded);
}

TEST_F(LeaseReaper, TwoVictimsOneSurvivorConverges) {
  // Two victims with interleaved lifetimes; whatever they managed to
  // register stays collectible until one reap pass returns the object to
  // empty. Uses rate injection, so the death points vary run to run — the
  // invariant may not.
  htm::config().crash.rate = 0.05;
  for (int v = 0; v < 2; ++v) {
    std::thread victim([&] {
      htm::crash::reset_thread();
      (void)htm::crash::run_victim([&] {
        std::vector<Handle> mine;
        for (uint64_t i = 0; i < 4; ++i) {
          mine.push_back(col_->register_handle(i));
        }
        for (uint64_t i = 0; i < 200; ++i) {
          col_->update(mine[i % mine.size()], i);
        }
        for (Handle h : mine) col_->deregister(h);
      });
    });
    victim.join();
  }
  htm::config().crash.rate = 0.0;
  while (col_->orphan_count() != 0) col_->reap_orphans();
  EXPECT_EQ(col_->lease_count(), 0u);
  EXPECT_TRUE(collect_set().empty());
}

}  // namespace
}  // namespace dc::collect
