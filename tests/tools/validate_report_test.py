#!/usr/bin/env python3
"""Self-test for scripts/validate_report.py.

The validator guards CI's smoke legs: a bug that makes it accept a broken
report — or reject a good one — is itself a CI escape, so it gets the same
treatment as the C++ code: known-good and known-bad inputs with asserted
exit codes, run out of process exactly as CI runs it.

Usage: validate_report_test.py /path/to/validate_report.py
"""
import json
import os
import subprocess
import sys
import tempfile

ABORT_CODES = ("none", "conflict", "overflow", "explicit", "illegal-access",
               "interrupt", "tlb-miss", "save-restore")
OPS = ("register", "update", "deregister", "collect", "commit")
OPS_V6 = OPS + ("validate",)


def good_v5_report():
    """A minimal report carrying every field the validator checks, shaped
    like a real clean-run bench_crash_recovery --json output."""
    return {
        "schema_version": 5,
        "bench": "self_test",
        "generated_utc": "2026-01-01T00:00:00Z",
        "options": {"duration_ms": 50, "repeats": 2, "max_threads": 4,
                    "hist": False, "trace": False, "clock": "gv5",
                    "retry": "cause", "fault_rate": 0, "crash_rate": 0},
        "htm": {
            "commits": 1000, "aborts": 3, "abort_rate": 0.003,
            "lock_fallbacks": 1, "clock_bumps": 0, "writer_commits": 900,
            "sloppy_stamps": 500, "clock_resamples": 10,
            "clock_catchups": 10, "coalesced_stores": 0,
            "faults_injected": 0, "tle_entries": 1, "storm_entries": 0,
            "storm_exits": 0, "max_consec_aborts": 2,
            "crashes_injected": 0, "lock_recoveries": 0,
            "orphans_reaped": 0,
            "aborts_by_code": {c: (3 if c == "conflict" else 0)
                               for c in ABORT_CODES},
        },
        "retry": {
            "policy": "cause",
            "by_cause": {c: {"count": 0, "p50_attempt": 0.0,
                             "p99_attempt": 0.0, "max_attempt": 0}
                         for c in ABORT_CODES},
        },
        "op_latency_ns": {op: {"count": 2, "p50": 100.0, "p90": 150.0,
                               "p99": 200.0, "max": 210.0, "mean": 120.0}
                          for op in OPS},
        "conflicts": {"recorded": 0, "dropped": 0, "top": []},
        "trace": {"compiled": False, "events_emitted": 0},
        "columns": ["threads", "algo"],
        "rows": [[1, 2.5], [2, 4.75]],
    }


def good_v4_report():
    """The pre-crash schema: no crash_rate option, no crash counters."""
    doc = good_v5_report()
    doc["schema_version"] = 4
    del doc["options"]["crash_rate"]
    for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
        del doc["htm"][key]
    return doc


def injected_v5_report():
    """A v5 report from a run with crash injection on, all counters hot."""
    doc = good_v5_report()
    doc["options"]["crash_rate"] = 0.05
    doc["htm"]["crashes_injected"] = 11
    doc["htm"]["lock_recoveries"] = 3
    doc["htm"]["orphans_reaped"] = 47
    return doc


def good_v6_report():
    """The signature-validation schema: options.validation, the three sig
    counters (all dormant on the default exact backend), and a "validate"
    entry in op_latency_ns."""
    doc = good_v5_report()
    doc["schema_version"] = 6
    doc["options"]["validation"] = "exact"
    doc["htm"]["sig_validations"] = 0
    doc["htm"]["sig_false_aborts"] = 0
    doc["htm"]["sig_ring_overflows"] = 0
    doc["op_latency_ns"] = {op: {"count": 2, "p50": 100.0, "p90": 150.0,
                                 "p99": 200.0, "max": 210.0, "mean": 120.0}
                            for op in OPS_V6}
    return doc


def sig_v6_report():
    """A v6 report from a --validate sig run, signature counters hot."""
    doc = good_v6_report()
    doc["options"]["validation"] = "sig"
    doc["htm"]["sig_validations"] = 950
    doc["htm"]["sig_false_aborts"] = 2
    doc["htm"]["sig_ring_overflows"] = 1
    return doc


def good_v7_report():
    """The telemetry schema with sampling OFF: the v6 shape plus the three
    new scalars and the split trace booleans — and, critically, NO timeline
    section (the zero-overhead guard)."""
    doc = good_v6_report()
    doc["schema_version"] = 7
    doc["options"]["sample_interval_ms"] = 0
    doc["options"]["slo"] = ""
    doc["trace"] = {"compiled": False, "requested": False,
                    "enabled": False, "events_emitted": 0}
    return doc


def sampled_v7_report():
    """A v7 report from a sampled, stormy run: two tumbling windows whose
    deltas telescope exactly to the htm counters, annotations whose
    per-kind value sums decompose storm_entries/storm_exits, and one SLO
    target with a violation."""
    doc = good_v7_report()
    doc["options"]["sample_interval_ms"] = 10
    doc["options"]["slo"] = "update_p99<50us"
    doc["htm"]["storm_entries"] = 2
    doc["htm"]["storm_exits"] = 1

    def counters(**kw):
        base = {k: 0 for k in
                ("commits", "aborts", "lock_fallbacks", "tle_entries",
                 "faults_injected", "crashes_injected", "storm_entries",
                 "storm_exits", "lock_recoveries", "orphans_reaped",
                 "sig_validations", "sig_false_aborts",
                 "sig_ring_overflows")}
        base.update(kw)
        return base

    ops = {"update": {"count": 5, "p50_ns": 100.0, "p90_ns": 150.0,
                      "p99_ns": 60000.0, "p999_ns": 61000.0}}
    doc["timeline"] = {
        "sample_interval_ms": 10,
        "windows_total": 2, "windows_dropped": 0, "events_dropped": 0,
        # The base fixture's lock_fallbacks/tle_entries predate the sampler
        # here: counters accumulated before start() land in the baseline.
        "baseline": counters(commits=100, lock_fallbacks=1, tle_entries=1),
        "windows": [
            dict(i=0, t_start_ms=0.0, t_end_ms=10.0,
                 **counters(commits=400, aborts=2, storm_entries=2),
                 ops=ops),
            dict(i=1, t_start_ms=10.0, t_end_ms=20.0,
                 **counters(commits=500, aborts=1, storm_exits=1),
                 ops={}),
        ],
        "annotations": [
            {"t_ms": 10.0, "window": 0, "kind": "storm_onset", "value": 2},
            {"t_ms": 20.0, "window": 1, "kind": "storm_exit", "value": 1},
        ],
        "annotation_totals": {"storm_onset": 2, "storm_exit": 1,
                              "lock_recovery": 0, "orphan_reap": 0,
                              "sig_saturation": 0, "thread_crash": 0},
        "slo": {"violations_total": 1, "targets": [
            {"spec": "update_p99<50us", "op": "update", "quantile": "p99",
             "bound_ns": 50000.0, "windows_evaluated": 2, "violations": 1,
             "worst_ns": 60000.0},
        ]},
    }
    return doc


def clean_sampled_v7_report():
    """A sampled run with no anomalies at all (the clean smoke leg)."""
    doc = sampled_v7_report()
    doc["htm"]["storm_entries"] = 0
    doc["htm"]["storm_exits"] = 0
    tl = doc["timeline"]
    tl["windows"][0]["storm_entries"] = 0
    tl["windows"][1]["storm_exits"] = 0
    tl["annotations"] = []
    tl["annotation_totals"] = {k: 0 for k in tl["annotation_totals"]}
    tl["slo"] = {"violations_total": 0, "targets": [
        {"spec": "update_p99<50us", "op": "update", "quantile": "p99",
         "bound_ns": 50000.0, "windows_evaluated": 2, "violations": 0,
         "worst_ns": 200.0},
    ]}
    return doc


def v8ify(doc):
    """Upgrades a v7 fixture to the v8 shape: the slo_observe option, the
    service pair in every counter block, the widened annotation whitelist,
    and the SLO episode ledger. No service section — that is bench_service's
    alone and is added by service_v8_report."""
    doc["schema_version"] = 8
    doc["options"]["slo_observe"] = False
    tl = doc.get("timeline")
    if tl:
        for blk in [tl["baseline"]] + tl["windows"]:
            blk.setdefault("sessions_shed", 0)
            blk.setdefault("chaos_phases", 0)
        tl["annotation_totals"].setdefault("shed_onset", 0)
        tl["annotation_totals"].setdefault("chaos_phase", 0)
        tl["slo"].setdefault("reattainments", 0)
        tl["slo"].setdefault("episodes", [])
    return doc


def good_v8_report():
    return v8ify(good_v7_report())


def sampled_v8_report():
    return v8ify(sampled_v7_report())


def service_v8_report():
    """A v8 bench_service report from a sampled chaos run: one fault-storm
    and one kill applied (one rate-spike never fired), 10 sessions shed,
    one worker death whose in-flight session was killed, orphan reaped,
    and the SLO violated once then re-attained. Timeline service counters
    telescope to the service totals; htm fault/crash counters are hot with
    the rate options at 0 — legal precisely because chaos phases fired."""
    doc = sampled_v8_report()
    doc["bench"] = "service"
    doc["htm"]["faults_injected"] = 50
    doc["htm"]["crashes_injected"] = 1
    doc["htm"]["orphans_reaped"] = 1
    tl = doc["timeline"]
    w0, w1 = tl["windows"]
    w0["faults_injected"] = 50
    w0["sessions_shed"] = 6
    w0["chaos_phases"] = 2
    w1["crashes_injected"] = 1
    w1["orphans_reaped"] = 1
    w1["sessions_shed"] = 4
    tl["annotations"] += [
        {"t_ms": 10.0, "window": 0, "kind": "shed_onset", "value": 6},
        {"t_ms": 10.0, "window": 0, "kind": "chaos_phase", "value": 2},
        {"t_ms": 20.0, "window": 1, "kind": "shed_onset", "value": 4},
        {"t_ms": 20.0, "window": 1, "kind": "orphan_reap", "value": 1},
        {"t_ms": 20.0, "window": 1, "kind": "thread_crash", "value": 1},
    ]
    tl["annotation_totals"].update(shed_onset=10, chaos_phase=2,
                                   orphan_reap=1, thread_crash=1)
    tl["slo"]["reattainments"] = 1
    tl["slo"]["episodes"] = [
        {"start_window": 0, "t_start_ms": 0.0, "end_window": 1,
         "t_end_ms": 10.0, "recovered": True, "violating_windows": 1},
    ]
    doc["service"] = {
        "arrival_rate": 1000.0, "burstiness": 0.0, "workers": 2,
        "queue_capacity": 64, "duration_ms": 100.0,
        "chaos_script": "bench/chaos_service.txt",
        "sessions_generated": 100, "sessions_accepted": 90,
        "sessions_shed": 10, "sessions_completed": 89,
        "sessions_killed": 1, "requests": 500, "worker_deaths": 1,
        "worker_respawns": 1, "reap_batches": 1, "chaos_phases": 2,
        "phases": [
            {"spec": "@10 fault-storm rate=0.5 for=20",
             "kind": "fault-storm", "at_ms": 10, "onset_ms": 10.5,
             "mttr_ms": 5.0, "shed_during": 4, "orphans_reaped": 0,
             "reap_latency_ms": -1.0},
            {"spec": "@50 kill worker=0 point=txn_op after=1",
             "kind": "kill", "at_ms": 50, "onset_ms": 50.2,
             "mttr_ms": 12.0, "shed_during": 6, "orphans_reaped": 1,
             "reap_latency_ms": 8.0},
            {"spec": "@500 rate-spike x=8 for=20", "kind": "rate-spike",
             "at_ms": 500, "onset_ms": -1.0, "mttr_ms": -1.0,
             "shed_during": 0, "orphans_reaped": 0,
             "reap_latency_ms": -1.0},
        ],
    }
    return doc


MEM_TL_KEYS = ("pool_allocations", "pool_deallocations", "pool_os_bytes",
               "alloc_failures", "alloc_faults_injected", "pool_caches_reaped",
               "mem_pressure_onsets", "mem_pressure_exits",
               "sessions_shed_mem")
MEM_ANNOTATIONS = ("mem_pressure_onset", "mem_pressure_exit",
                   "mem_shed_onset", "alloc_fault_burst")


def mem_section(**kw):
    """An all-dormant mem section whose ledgers balance: one thread did ten
    allocations and ten frees against one mapped slab."""
    base = {"limit_bytes": 0, "os_bytes": 65536, "live_bytes": 0,
            "live_blocks": 0, "allocations": 10, "deallocations": 10,
            "alloc_failures": 0, "alloc_faults_injected": 0,
            "cache_blocks_stranded": 0, "cache_blocks_reaped": 0,
            "mem_pressure_onsets": 0, "mem_pressure_exits": 0,
            "alloc_fault_rate": 0,
            "threads": [{"tid": 0, "allocations": 10, "deallocations": 10,
                         "alloc_failures": 0, "alloc_faults_injected": 0}]}
    base.update(kw)
    return base


def v9ify(doc):
    """Upgrades a v8 fixture to the v9 shape: the memory-tier options, the
    alloc-failed abort code and retry cause, the nine memory counters in
    every timeline counter block (cumulative pool state rides in the
    baseline), the widened annotation whitelist, and a dormant mem
    section. Service-section widening is squeeze/service fixtures' own."""
    doc["schema_version"] = 9
    doc["options"]["mem_limit"] = 0
    doc["options"]["alloc_fault_rate"] = 0
    doc["htm"]["aborts_by_code"]["alloc-failed"] = 0
    doc["retry"]["by_cause"]["alloc-failed"] = {
        "count": 0, "p50_attempt": 0.0, "p99_attempt": 0.0, "max_attempt": 0}
    doc["mem"] = mem_section()
    tl = doc.get("timeline")
    if tl:
        for blk in [tl["baseline"]] + tl["windows"]:
            for key in MEM_TL_KEYS:
                blk.setdefault(key, 0)
        tl["baseline"]["pool_allocations"] = 10
        tl["baseline"]["pool_deallocations"] = 10
        tl["baseline"]["pool_os_bytes"] = 65536
        for kind in MEM_ANNOTATIONS:
            tl["annotation_totals"].setdefault(kind, 0)
    return doc


def good_v9_report():
    return v9ify(good_v8_report())


def sampled_v9_report():
    return v9ify(sampled_v8_report())


def injected_v9_report():
    """A v9 report from an --alloc-fault-rate run: seeded denials were
    injected and every one was counted as a failure, dormancy waived by
    the nonzero rate option."""
    doc = good_v9_report()
    doc["options"]["alloc_fault_rate"] = 0.05
    doc["mem"]["alloc_fault_rate"] = 0.05
    doc["mem"]["alloc_failures"] = 3
    doc["mem"]["alloc_faults_injected"] = 3
    doc["mem"]["threads"][0]["alloc_failures"] = 3
    doc["mem"]["threads"][0]["alloc_faults_injected"] = 3
    return doc


def service_v9_report():
    doc = v9ify(service_v8_report())
    doc["service"]["sessions_shed_mem"] = 0
    doc["service"]["sessions_oom"] = 0
    return doc


def squeeze_v9_report():
    """A v9 bench_service report whose chaos script also ran a mem-squeeze:
    five sessions shed on the pool watermark during the squeeze window, one
    pressure episode opened and closed, everything telescoping through the
    timeline to the mem and service sections."""
    doc = service_v9_report()
    svc = doc["service"]
    svc["chaos_script"] = "bench/chaos_mem.txt"
    svc["phases"].append(
        {"spec": "@30 mem-squeeze limit=460k for=40", "kind": "mem-squeeze",
         "at_ms": 30, "onset_ms": 30.4, "mttr_ms": 6.0, "shed_during": 5,
         "orphans_reaped": 0, "reap_latency_ms": -1.0})
    svc["chaos_phases"] = 3
    svc["sessions_shed_mem"] = 5
    svc["sessions_accepted"] = 85
    svc["sessions_completed"] = 84
    doc["mem"]["mem_pressure_onsets"] = 1
    doc["mem"]["mem_pressure_exits"] = 1
    tl = doc["timeline"]
    w1 = tl["windows"][1]
    w1["chaos_phases"] = 1
    w1["sessions_shed_mem"] = 5
    w1["mem_pressure_onsets"] = 1
    w1["mem_pressure_exits"] = 1
    tl["annotations"] += [
        {"t_ms": 20.0, "window": 1, "kind": "chaos_phase", "value": 1},
        {"t_ms": 20.0, "window": 1, "kind": "mem_shed_onset", "value": 5},
        {"t_ms": 20.0, "window": 1, "kind": "mem_pressure_onset", "value": 1},
        {"t_ms": 20.0, "window": 1, "kind": "mem_pressure_exit", "value": 1},
    ]
    tl["annotation_totals"].update(chaos_phase=3, mem_shed_onset=5,
                                  mem_pressure_onset=1, mem_pressure_exit=1)
    return doc


def run_validator(validator, doc, flags=()):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False,
                                     encoding="utf-8") as f:
        json.dump(doc, f)
        path = f.name
    try:
        proc = subprocess.run(
            [sys.executable, validator, path, *flags],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        return proc.returncode, proc.stderr
    finally:
        os.unlink(path)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    validator = sys.argv[1]
    failures = []

    def expect(label, doc, want_code, flags=(), want_err=""):
        code, err = run_validator(validator, doc, flags)
        if code != want_code:
            failures.append(f"{label}: exit {code}, wanted {want_code}"
                            f" (stderr: {err.strip()})")
        elif want_err and want_err not in err:
            failures.append(f"{label}: stderr {err.strip()!r} lacks"
                            f" {want_err!r}")
        else:
            print(f"  ok: {label}")

    # --- Known-good inputs must pass. ---
    expect("good v5 clean run", good_v5_report(), 0)
    expect("good v4 report (back-compat)", good_v4_report(), 0)
    expect("injected v5 with --expect-crashes", injected_v5_report(), 0,
           ["--expect-crashes"])
    expect("injected v5 without the flag", injected_v5_report(), 0)
    expect("good v6 exact run", good_v6_report(), 0)
    expect("good v6 sig run", sig_v6_report(), 0)

    # --- Known-bad inputs must fail with the right diagnostic. ---
    bad = good_v5_report()
    bad["schema_version"] = 3
    expect("stale schema_version", bad, 1, (), "schema_version")

    bad = good_v5_report()
    del bad["htm"]["crashes_injected"]
    expect("v5 missing a crash counter", bad, 1, (), "crashes_injected")

    bad = good_v5_report()
    del bad["options"]["crash_rate"]
    expect("v5 missing options.crash_rate", bad, 1, (), "crash_rate")

    # Zero-overhead guard: injection off but a crash counter is hot.
    bad = good_v5_report()
    bad["htm"]["orphans_reaped"] = 1
    expect("clean run with nonzero orphans_reaped", bad, 1, (),
           "crash injection off")

    # --expect-crashes on an all-zero report must fail...
    expect("--expect-crashes on a clean report", good_v5_report(), 1,
           ["--expect-crashes"], "--expect-crashes")
    # ...and is meaningless against a v4 report.
    expect("--expect-crashes on a v4 report", good_v4_report(), 1,
           ["--expect-crashes"], "v5")

    # A partially-hot triple is suspicious under --expect-crashes: crashes
    # happened but no orphan was ever reaped means the reaper never ran.
    bad = injected_v5_report()
    bad["htm"]["orphans_reaped"] = 0
    expect("--expect-crashes with cold orphans_reaped", bad, 1,
           ["--expect-crashes"], "orphans_reaped")

    # --- v6: signature-validation schema. ---
    bad = good_v6_report()
    del bad["options"]["validation"]
    expect("v6 missing options.validation", bad, 1, (), "validation")

    bad = good_v6_report()
    bad["options"]["validation"] = "bloom"
    expect("v6 unknown validation backend", bad, 1, (), "validation")

    bad = good_v6_report()
    del bad["htm"]["sig_ring_overflows"]
    expect("v6 missing a sig counter", bad, 1, (), "sig_ring_overflows")

    # Dormancy guard: exact backend but a signature counter is hot.
    bad = good_v6_report()
    bad["htm"]["sig_validations"] = 7
    expect("exact run with nonzero sig_validations", bad, 1, (),
           "validation is exact")

    bad = good_v6_report()
    del bad["op_latency_ns"]["validate"]
    expect("v6 missing the validate op histogram", bad, 1, (), "validate")

    # A v5 report need not carry the v6 fields (back-compat): good_v5_report
    # already passes above without them.

    # Unrelated invariants must still hold in v5 (regression guard that the
    # new version didn't loosen the old checks).
    bad = good_v5_report()
    bad["htm"]["aborts_by_code"]["conflict"] = 99
    expect("aborts_by_code sum mismatch", bad, 1, (), "sum")

    bad = good_v5_report()
    bad["rows"] = []
    expect("empty rows", bad, 1, (), "rows")

    # --- v7: continuous-telemetry schema. ---
    expect("good v7 sampling off", good_v7_report(), 0)
    expect("good v7 sampled stormy run", sampled_v7_report(), 0)
    expect("good v7 sampled clean run", clean_sampled_v7_report(), 0)
    expect("v7 exact --schema match", good_v7_report(), 0, ["--schema", "7"])
    expect("--schema mismatch", good_v6_report(), 1, ["--schema", "7"],
           "--schema 7")
    expect("--expect-storms on a stormy run", sampled_v7_report(), 0,
           ["--expect-storms"])
    expect("--expect-storms on a clean run", clean_sampled_v7_report(), 1,
           ["--expect-storms"], "--expect-storms")
    expect("--expect-clean-timeline on a clean run",
           clean_sampled_v7_report(), 0, ["--expect-clean-timeline"])
    expect("--expect-clean-timeline on a stormy run", sampled_v7_report(), 1,
           ["--expect-clean-timeline"], "--expect-clean-timeline")
    expect("--expect-storms on an unsampled run", good_v7_report(), 1,
           ["--expect-storms"], "sampled run")

    bad = good_v7_report()
    del bad["options"]["sample_interval_ms"]
    expect("v7 missing options.sample_interval_ms", bad, 1, (),
           "sample_interval_ms")

    bad = good_v7_report()
    del bad["options"]["slo"]
    expect("v7 missing options.slo", bad, 1, (), "slo")

    bad = good_v7_report()
    del bad["trace"]["requested"]
    expect("v7 missing trace.requested", bad, 1, (), "requested")

    bad = good_v7_report()
    bad["trace"]["enabled"] = True  # requested=False, compiled=False
    expect("trace.enabled inconsistent with requested/compiled", bad, 1, (),
           "enabled")

    # Zero-overhead guard, both directions: a timeline on an unsampled run
    # and a missing timeline on a sampled run are each an error.
    bad = good_v7_report()
    bad["timeline"] = sampled_v7_report()["timeline"]
    expect("sampling off but timeline present", bad, 1, (),
           "zero-overhead")

    bad = sampled_v7_report()
    del bad["timeline"]
    expect("sampling on but timeline absent", bad, 1, (), "timeline")

    # Conservation: window deltas must telescope to the htm counters...
    bad = sampled_v7_report()
    bad["timeline"]["windows"][1]["commits"] = 499
    expect("window deltas do not decompose htm.commits", bad, 1, (),
           "decompose")

    # ...and annotation totals must equal counter minus baseline.
    bad = sampled_v7_report()
    bad["timeline"]["annotation_totals"]["storm_onset"] = 1
    expect("annotation_totals mismatch", bad, 1, (), "storm_onset")

    bad = sampled_v7_report()
    bad["timeline"]["annotations"][0]["kind"] = "gremlin"
    expect("unknown annotation kind", bad, 1, (), "whitelist")

    bad = sampled_v7_report()
    bad["timeline"]["annotations"][0]["value"] = 1  # sums no longer match
    expect("annotation event values do not sum to totals", bad, 1, (),
           "sum")

    bad = sampled_v7_report()
    ops = bad["timeline"]["windows"][0]["ops"]["update"]
    ops["p99_ns"] = 10.0  # below p90
    expect("window quantiles out of order", bad, 1, (), "out of order")

    bad = sampled_v7_report()
    bad["timeline"]["windows"][0]["ops"]["update"]["count"] = 0
    expect("quiet op not omitted from window", bad, 1, (), "count")

    bad = sampled_v7_report()
    bad["timeline"]["windows"][1]["t_start_ms"] = 12.0
    expect("windows do not tile", bad, 1, (), "tile")

    bad = sampled_v7_report()
    bad["timeline"]["slo"]["violations_total"] = 5
    expect("slo violations_total mismatch", bad, 1, (), "violations_total")

    bad = sampled_v7_report()
    bad["timeline"]["slo"]["targets"][0]["violations"] = 99
    expect("slo violations exceed evaluated windows", bad, 1, (),
           "violations")

    # --- v8: service harness schema. ---
    expect("good v8 non-service report", good_v8_report(), 0)
    expect("good v8 sampled non-service report", sampled_v8_report(), 0)
    expect("good v8 service chaos report", service_v8_report(), 0)
    expect("v8 exact --schema match", good_v8_report(), 0, ["--schema", "8"])
    expect("service report with all expect flags", service_v8_report(), 0,
           ["--expect-service", "--expect-shed", "--expect-chaos"])

    bad = good_v8_report()
    del bad["options"]["slo_observe"]
    expect("v8 missing options.slo_observe", bad, 1, (), "slo_observe")

    # Present-iff-service, both directions.
    bad = good_v8_report()
    bad["service"] = service_v8_report()["service"]
    expect("service section on a non-service bench", bad, 1, (), "iff")

    bad = service_v8_report()
    del bad["service"]
    expect("bench=service without a service section", bad, 1, (), "iff")

    bad = good_v7_report()
    bad["service"] = service_v8_report()["service"]
    expect("v7 report with a v8 service section", bad, 1, (), "v8")

    # The conservation laws, both halves.
    bad = service_v8_report()
    bad["service"]["sessions_shed"] = 9  # silently lost one shed session
    expect("generated != accepted + shed", bad, 1, (), "conservation")

    bad = service_v8_report()
    bad["service"]["sessions_completed"] = 90  # invented a completion
    expect("accepted != completed + killed", bad, 1, (), "conservation")

    bad = service_v8_report()
    bad["service"]["sessions_killed"] = 0
    bad["service"]["sessions_completed"] = 90
    expect("worker died but no session killed", bad, 1, (), "death")

    bad = service_v8_report()
    bad["service"]["worker_respawns"] = 3
    expect("more respawns than deaths", bad, 1, (), "respawns")

    # Timeline/service cross-checks: the service counters must telescope
    # to the section totals in a service report...
    bad = service_v8_report()
    bad["timeline"]["windows"][1]["sessions_shed"] = 3
    expect("timeline shed does not telescope to service total", bad, 1, (),
           "decompose")

    # ...and to exactly zero in a non-service report (dormancy guard).
    bad = sampled_v8_report()
    bad["timeline"]["windows"][0]["sessions_shed"] = 1
    expect("non-service report ticked sessions_shed", bad, 1, (),
           "decompose")

    bad = sampled_v8_report()
    del bad["timeline"]["annotation_totals"]["shed_onset"]
    expect("v8 annotation whitelist missing shed_onset", bad, 1, (),
           "whitelist")

    # The episode ledger.
    bad = sampled_v8_report()
    del bad["timeline"]["slo"]["reattainments"]
    expect("v8 slo missing reattainments", bad, 1, (), "reattainments")

    bad = service_v8_report()
    bad["timeline"]["slo"]["episodes"][0]["recovered"] = False
    expect("recovered episodes != reattainments", bad, 1, (),
           "reattainments")

    bad = service_v8_report()
    bad["timeline"]["slo"]["episodes"][0]["violating_windows"] = 0
    expect("episode with zero violating windows", bad, 1, (), "episode")

    # Phase reports: an unapplied phase must be inert, and the applied
    # count must reconcile with the chaos_phases counter.
    bad = service_v8_report()
    bad["service"]["phases"][2]["shed_during"] = 5
    expect("unapplied phase reports activity", bad, 1, (), "unapplied")

    bad = service_v8_report()
    bad["service"]["chaos_phases"] = 3
    expect("chaos_phases != phases with an onset", bad, 1, (), "onset")

    # Chaos can legitimately heat fault/crash counters with the rate
    # options at 0 — but only the phase kinds that fired. A kill-free
    # report with hot crash counters is still a leak.
    bad = service_v8_report()
    bad["service"]["phases"][1]["onset_ms"] = -1.0
    bad["service"]["phases"][1]["mttr_ms"] = -1.0
    bad["service"]["phases"][1]["shed_during"] = 0
    bad["service"]["phases"][1]["orphans_reaped"] = 0
    bad["service"]["phases"][1]["reap_latency_ms"] = -1.0
    bad["service"]["chaos_phases"] = 1
    bad["service"]["sessions_killed"] = 0
    bad["service"]["sessions_completed"] = 90
    bad["service"]["worker_deaths"] = 0
    bad["service"]["worker_respawns"] = 0
    expect("crash counters hot without an applied kill phase", bad, 1, (),
           "crash injection off")

    # The expect flags.
    bad = service_v8_report()
    bad["service"]["sessions_shed"] = 0
    bad["service"]["sessions_accepted"] = 100
    bad["service"]["sessions_completed"] = 99
    for w in bad["timeline"]["windows"]:
        w["sessions_shed"] = 0
    bad["timeline"]["annotation_totals"]["shed_onset"] = 0
    bad["timeline"]["annotations"] = [
        a for a in bad["timeline"]["annotations"]
        if a["kind"] != "shed_onset"]
    expect("--expect-shed on a shed-free run", bad, 1, ["--expect-shed"],
           "--expect-shed")

    bad = service_v8_report()
    bad["service"]["phases"][1]["mttr_ms"] = -1.0
    expect("--expect-chaos with an unrecovered phase", bad, 1,
           ["--expect-chaos"], "re-attained")

    expect("--expect-service on a non-service v8 report", good_v8_report(),
           1, ["--expect-service"], "bench_service")
    expect("--expect-chaos on a v7 report", good_v7_report(), 1,
           ["--expect-chaos"], "v8")

    # --- v9: memory-tier schema. ---
    expect("good v9 unsampled report", good_v9_report(), 0)
    expect("good v9 sampled report", sampled_v9_report(), 0)
    expect("v9 exact --schema match", good_v9_report(), 0, ["--schema", "9"])
    expect("good v9 service report", service_v9_report(), 0,
           ["--expect-service"])
    expect("injected v9 with --expect-alloc-faults", injected_v9_report(), 0,
           ["--expect-alloc-faults"])
    expect("squeeze v9 with all expect flags", squeeze_v9_report(), 0,
           ["--expect-service", "--expect-chaos", "--expect-mem-squeeze"])

    bad = good_v9_report()
    del bad["options"]["mem_limit"]
    expect("v9 missing options.mem_limit", bad, 1, (), "mem_limit")

    bad = good_v9_report()
    del bad["options"]["alloc_fault_rate"]
    expect("v9 missing options.alloc_fault_rate", bad, 1, (),
           "alloc_fault_rate")

    # The mem section is present iff v9, on every bench.
    bad = good_v9_report()
    del bad["mem"]
    expect("v9 report without a mem section", bad, 1, (), "mem")

    bad = good_v8_report()
    bad["mem"] = mem_section()
    expect("v8 report carrying a v9 mem section", bad, 1, (), "mem section")

    bad = good_v9_report()
    del bad["htm"]["aborts_by_code"]["alloc-failed"]
    expect("v9 missing the alloc-failed abort code", bad, 1, (),
           "alloc-failed")

    bad = good_v9_report()
    del bad["retry"]["by_cause"]["alloc-failed"]
    expect("v9 missing the alloc-failed retry cause", bad, 1, (),
           "alloc-failed")

    # The conservation laws that tie the ledgers together.
    bad = good_v9_report()
    bad["mem"]["threads"][0]["allocations"] = 9
    expect("per-thread ledgers do not sum to globals", bad, 1, (),
           "per-thread")

    bad = good_v9_report()
    bad["mem"]["live_blocks"] = 1
    expect("allocations - deallocations != live_blocks", bad, 1, (),
           "live_blocks")

    bad = injected_v9_report()
    bad["mem"]["alloc_failures"] = 2
    bad["mem"]["threads"][0]["alloc_failures"] = 2
    expect("more injected faults than failures", bad, 1, (), "injected")

    bad = good_v9_report()
    bad["mem"]["mem_pressure_exits"] = 1
    bad["mem"]["mem_pressure_onsets"] = 0
    expect("more pressure exits than onsets", bad, 1, (), "exits")

    # Dormancy guards: clean runs must be provably clean.
    bad = good_v9_report()
    bad["mem"]["alloc_failures"] = 1
    bad["mem"]["threads"][0]["alloc_failures"] = 1
    expect("bound off but alloc_failures hot", bad, 1, (), "machinery off")

    bad = good_v9_report()
    bad["htm"]["aborts_by_code"]["alloc-failed"] = 3
    bad["htm"]["aborts_by_code"]["conflict"] = 0
    expect("bound off but alloc-failed aborts recorded", bad, 1, (),
           "alloc-failed")

    bad = good_v9_report()
    bad["mem"]["cache_blocks_stranded"] = 2
    bad["mem"]["cache_blocks_reaped"] = 1
    expect("crash injection off but stranded-cache counters hot", bad, 1, (),
           "crash injection off")

    # Timeline cross-checks: every counter block carries the memory nine
    # and they telescope to the mem section.
    bad = sampled_v9_report()
    del bad["timeline"]["baseline"]["pool_allocations"]
    expect("v9 baseline missing a memory counter", bad, 1, (),
           "pool_allocations")

    bad = sampled_v9_report()
    bad["timeline"]["windows"][0]["pool_allocations"] = 1
    expect("timeline pool counters do not telescope to mem", bad, 1, (),
           "decompose")

    bad = sampled_v9_report()
    del bad["timeline"]["annotation_totals"]["mem_pressure_onset"]
    expect("v9 annotation whitelist missing mem_pressure_onset", bad, 1, (),
           "whitelist")

    # The squeeze fixture's telescoping is load-bearing: break one leg.
    bad = squeeze_v9_report()
    bad["timeline"]["windows"][1]["sessions_shed_mem"] = 4
    expect("timeline shed_mem does not telescope to service", bad, 1, (),
           "decompose")

    bad = squeeze_v9_report()
    bad["service"]["sessions_shed_mem"] = 4
    expect("generated != accepted + shed + shed_mem", bad, 1, (),
           "conservation")

    bad = squeeze_v9_report()
    bad["service"]["sessions_oom"] = 1
    expect("accepted != completed + killed + oom", bad, 1, (),
           "conservation")

    # A mem-squeeze phase is a v9 concept.
    bad = service_v8_report()
    bad["service"]["phases"][2]["kind"] = "mem-squeeze"
    expect("mem-squeeze phase kind in a v8 report", bad, 1, (), "kind")

    # The expect flags.
    expect("--expect-alloc-faults on a clean v9 report", good_v9_report(), 1,
           ["--expect-alloc-faults"], "--expect-alloc-faults")
    expect("--expect-alloc-faults on a v8 report", good_v8_report(), 1,
           ["--expect-alloc-faults"], "v9")
    expect("--expect-mem-squeeze without a squeeze phase",
           service_v9_report(), 1, ["--expect-mem-squeeze"],
           "--expect-mem-squeeze")

    if failures:
        print("validate_report_test: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("validate_report_test: all cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
