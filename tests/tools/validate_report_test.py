#!/usr/bin/env python3
"""Self-test for scripts/validate_report.py.

The validator guards CI's smoke legs: a bug that makes it accept a broken
report — or reject a good one — is itself a CI escape, so it gets the same
treatment as the C++ code: known-good and known-bad inputs with asserted
exit codes, run out of process exactly as CI runs it.

Usage: validate_report_test.py /path/to/validate_report.py
"""
import json
import os
import subprocess
import sys
import tempfile

ABORT_CODES = ("none", "conflict", "overflow", "explicit", "illegal-access",
               "interrupt", "tlb-miss", "save-restore")
OPS = ("register", "update", "deregister", "collect", "commit")
OPS_V6 = OPS + ("validate",)


def good_v5_report():
    """A minimal report carrying every field the validator checks, shaped
    like a real clean-run bench_crash_recovery --json output."""
    return {
        "schema_version": 5,
        "bench": "self_test",
        "generated_utc": "2026-01-01T00:00:00Z",
        "options": {"duration_ms": 50, "repeats": 2, "max_threads": 4,
                    "hist": False, "trace": False, "clock": "gv5",
                    "retry": "cause", "fault_rate": 0, "crash_rate": 0},
        "htm": {
            "commits": 1000, "aborts": 3, "abort_rate": 0.003,
            "lock_fallbacks": 1, "clock_bumps": 0, "writer_commits": 900,
            "sloppy_stamps": 500, "clock_resamples": 10,
            "clock_catchups": 10, "coalesced_stores": 0,
            "faults_injected": 0, "tle_entries": 1, "storm_entries": 0,
            "storm_exits": 0, "max_consec_aborts": 2,
            "crashes_injected": 0, "lock_recoveries": 0,
            "orphans_reaped": 0,
            "aborts_by_code": {c: (3 if c == "conflict" else 0)
                               for c in ABORT_CODES},
        },
        "retry": {
            "policy": "cause",
            "by_cause": {c: {"count": 0, "p50_attempt": 0.0,
                             "p99_attempt": 0.0, "max_attempt": 0}
                         for c in ABORT_CODES},
        },
        "op_latency_ns": {op: {"count": 2, "p50": 100.0, "p90": 150.0,
                               "p99": 200.0, "max": 210.0, "mean": 120.0}
                          for op in OPS},
        "conflicts": {"recorded": 0, "dropped": 0, "top": []},
        "trace": {"compiled": False, "events_emitted": 0},
        "columns": ["threads", "algo"],
        "rows": [[1, 2.5], [2, 4.75]],
    }


def good_v4_report():
    """The pre-crash schema: no crash_rate option, no crash counters."""
    doc = good_v5_report()
    doc["schema_version"] = 4
    del doc["options"]["crash_rate"]
    for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
        del doc["htm"][key]
    return doc


def injected_v5_report():
    """A v5 report from a run with crash injection on, all counters hot."""
    doc = good_v5_report()
    doc["options"]["crash_rate"] = 0.05
    doc["htm"]["crashes_injected"] = 11
    doc["htm"]["lock_recoveries"] = 3
    doc["htm"]["orphans_reaped"] = 47
    return doc


def good_v6_report():
    """The signature-validation schema: options.validation, the three sig
    counters (all dormant on the default exact backend), and a "validate"
    entry in op_latency_ns."""
    doc = good_v5_report()
    doc["schema_version"] = 6
    doc["options"]["validation"] = "exact"
    doc["htm"]["sig_validations"] = 0
    doc["htm"]["sig_false_aborts"] = 0
    doc["htm"]["sig_ring_overflows"] = 0
    doc["op_latency_ns"] = {op: {"count": 2, "p50": 100.0, "p90": 150.0,
                                 "p99": 200.0, "max": 210.0, "mean": 120.0}
                            for op in OPS_V6}
    return doc


def sig_v6_report():
    """A v6 report from a --validate sig run, signature counters hot."""
    doc = good_v6_report()
    doc["options"]["validation"] = "sig"
    doc["htm"]["sig_validations"] = 950
    doc["htm"]["sig_false_aborts"] = 2
    doc["htm"]["sig_ring_overflows"] = 1
    return doc


def run_validator(validator, doc, flags=()):
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False,
                                     encoding="utf-8") as f:
        json.dump(doc, f)
        path = f.name
    try:
        proc = subprocess.run(
            [sys.executable, validator, path, *flags],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        return proc.returncode, proc.stderr
    finally:
        os.unlink(path)


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    validator = sys.argv[1]
    failures = []

    def expect(label, doc, want_code, flags=(), want_err=""):
        code, err = run_validator(validator, doc, flags)
        if code != want_code:
            failures.append(f"{label}: exit {code}, wanted {want_code}"
                            f" (stderr: {err.strip()})")
        elif want_err and want_err not in err:
            failures.append(f"{label}: stderr {err.strip()!r} lacks"
                            f" {want_err!r}")
        else:
            print(f"  ok: {label}")

    # --- Known-good inputs must pass. ---
    expect("good v5 clean run", good_v5_report(), 0)
    expect("good v4 report (back-compat)", good_v4_report(), 0)
    expect("injected v5 with --expect-crashes", injected_v5_report(), 0,
           ["--expect-crashes"])
    expect("injected v5 without the flag", injected_v5_report(), 0)
    expect("good v6 exact run", good_v6_report(), 0)
    expect("good v6 sig run", sig_v6_report(), 0)

    # --- Known-bad inputs must fail with the right diagnostic. ---
    bad = good_v5_report()
    bad["schema_version"] = 3
    expect("stale schema_version", bad, 1, (), "schema_version")

    bad = good_v5_report()
    del bad["htm"]["crashes_injected"]
    expect("v5 missing a crash counter", bad, 1, (), "crashes_injected")

    bad = good_v5_report()
    del bad["options"]["crash_rate"]
    expect("v5 missing options.crash_rate", bad, 1, (), "crash_rate")

    # Zero-overhead guard: injection off but a crash counter is hot.
    bad = good_v5_report()
    bad["htm"]["orphans_reaped"] = 1
    expect("clean run with nonzero orphans_reaped", bad, 1, (),
           "crash injection off")

    # --expect-crashes on an all-zero report must fail...
    expect("--expect-crashes on a clean report", good_v5_report(), 1,
           ["--expect-crashes"], "--expect-crashes")
    # ...and is meaningless against a v4 report.
    expect("--expect-crashes on a v4 report", good_v4_report(), 1,
           ["--expect-crashes"], "v5")

    # A partially-hot triple is suspicious under --expect-crashes: crashes
    # happened but no orphan was ever reaped means the reaper never ran.
    bad = injected_v5_report()
    bad["htm"]["orphans_reaped"] = 0
    expect("--expect-crashes with cold orphans_reaped", bad, 1,
           ["--expect-crashes"], "orphans_reaped")

    # --- v6: signature-validation schema. ---
    bad = good_v6_report()
    del bad["options"]["validation"]
    expect("v6 missing options.validation", bad, 1, (), "validation")

    bad = good_v6_report()
    bad["options"]["validation"] = "bloom"
    expect("v6 unknown validation backend", bad, 1, (), "validation")

    bad = good_v6_report()
    del bad["htm"]["sig_ring_overflows"]
    expect("v6 missing a sig counter", bad, 1, (), "sig_ring_overflows")

    # Dormancy guard: exact backend but a signature counter is hot.
    bad = good_v6_report()
    bad["htm"]["sig_validations"] = 7
    expect("exact run with nonzero sig_validations", bad, 1, (),
           "validation is exact")

    bad = good_v6_report()
    del bad["op_latency_ns"]["validate"]
    expect("v6 missing the validate op histogram", bad, 1, (), "validate")

    # A v5 report need not carry the v6 fields (back-compat): good_v5_report
    # already passes above without them.

    # Unrelated invariants must still hold in v5 (regression guard that the
    # new version didn't loosen the old checks).
    bad = good_v5_report()
    bad["htm"]["aborts_by_code"]["conflict"] = 99
    expect("aborts_by_code sum mismatch", bad, 1, (), "sum")

    bad = good_v5_report()
    bad["rows"] = []
    expect("empty rows", bad, 1, (), "rows")

    if failures:
        print("validate_report_test: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("validate_report_test: all cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
