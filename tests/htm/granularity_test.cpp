// Conflict-detection granularity (Config::conflict_granularity_log2):
// word-granularity orecs keep adjacent data independent; cache-line
// granularity makes neighbours false-share, as on real HTMs.
#include <gtest/gtest.h>

#include <thread>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class Granularity : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    config().tle_after_aborts = 0;
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

struct alignas(64) Line {
  uint64_t a = 0;
  uint64_t b = 0;  // same cache line as a
};

TEST_F(Granularity, WordGranularityIgnoresNeighbourWrites) {
  config().conflict_granularity_log2 = 3;
  Line line;
  const TryResult r = try_once([&](Txn& txn) {
    (void)txn.load(&line.a);
    nontxn_store(&line.b, uint64_t{1});  // neighbour write mid-txn
    (void)txn.load(&line.a);             // revalidates orec(a): untouched
  });
  EXPECT_TRUE(r.committed);
}

TEST_F(Granularity, LineGranularityFalseSharesNeighbourWrites) {
  config().conflict_granularity_log2 = 6;
  Line line;
  const TryResult r = try_once([&](Txn& txn) {
    (void)txn.load(&line.a);
    nontxn_store(&line.b, uint64_t{1});  // bumps the shared line orec
    // Reading anything on the line now observes a newer version; extension
    // fails because orec(a) == orec(b) was bumped after we read a.
    (void)txn.load(&line.a);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kConflict);
}

TEST_F(Granularity, LineGranularityStillAtomic) {
  // Correctness must be granularity-independent; only abort rates change.
  config().conflict_granularity_log2 = 6;
  config().tle_after_aborts = 64;
  uint64_t counter = 0;
  std::thread t1([&] {
    for (int i = 0; i < 2000; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 2000; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(counter, 4000u);
}

TEST_F(Granularity, WriteWriteFalseConflictAtLineGranularity) {
  // Two txns writing different words of one line: fine at word granularity;
  // at line granularity the second committer must either wait out or abort
  // against the first's orec lock — but both must eventually commit.
  for (const uint32_t g : {3u, 6u}) {
    config().conflict_granularity_log2 = g;
    config().tle_after_aborts = 64;
    Line line;
    reset_stats();
    std::thread t1([&] {
      for (int i = 0; i < 1000; ++i) {
        atomic([&](Txn& txn) { txn.store(&line.a, txn.load(&line.a) + 1); });
      }
    });
    std::thread t2([&] {
      for (int i = 0; i < 1000; ++i) {
        atomic([&](Txn& txn) { txn.store(&line.b, txn.load(&line.b) + 1); });
      }
    });
    t1.join();
    t2.join();
    EXPECT_EQ(line.a, 1000u) << "granularity " << g;
    EXPECT_EQ(line.b, 1000u) << "granularity " << g;
  }
}

}  // namespace
}  // namespace dc::htm
