// Covers the transaction hot-path fast paths: load-time read-set dedup,
// store-time write dedup with the precomputed commit lock list, and the
// clock-skipping read-only / unchanged-value commit paths. Each fast path
// must keep the substrate's conflict detection and serializability intact —
// these tests pin the tricky interleavings deterministically (same-thread
// strong-atomicity stores play the "concurrent writer") plus one threaded
// stress for the silent-commit path.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class TxnHotPath : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(TxnHotPath, RepeatedLoadsDedupToOneReadSetEntry) {
  uint64_t word = 7;
  {
    Txn txn;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(txn.load(&word), 7u);
    txn.commit();
  }
  // 100 loads of one word must occupy exactly one read-set slot.
  EXPECT_EQ(aggregate_stats().max_read_set, 1u);
}

TEST_F(TxnHotPath, DedupedReadStillConflictsWithWriter) {
  // The dedup filter must not swallow conflict detection: once a writer
  // bumps the word's orec, the next (deduplicated) load has to abort.
  uint64_t word = 1;
  bool aborted = false;
  try {
    Txn txn;
    EXPECT_EQ(txn.load(&word), 1u);
    EXPECT_EQ(txn.load(&word), 1u);  // deduped: read set still has 1 entry
    nontxn_store(&word, uint64_t{2});
    (void)txn.load(&word);  // version moved past rv_, extension must fail
    txn.commit();
  } catch (const TxnAbort& a) {
    aborted = true;
    EXPECT_EQ(a.code, AbortCode::kConflict);
  }
  EXPECT_TRUE(aborted);
}

TEST_F(TxnHotPath, CommitValidationCatchesWriterAfterDedupedReads) {
  // Same conflict, but detected at commit time: the single deduplicated
  // read-set entry must still fail validation for a writing commit.
  uint64_t a = 1, b = 2;
  bool aborted = false;
  try {
    Txn txn;
    (void)txn.load(&a);
    (void)txn.load(&a);
    nontxn_store(&a, uint64_t{5});
    txn.store(&b, uint64_t{9});
    txn.commit();
  } catch (const TxnAbort& e) {
    aborted = true;
    EXPECT_EQ(e.code, AbortCode::kConflict);
  }
  EXPECT_TRUE(aborted);
  EXPECT_EQ(b, 2u);  // the buffered store was discarded
}

TEST_F(TxnHotPath, RepeatedStoresDedupToOneWriteSetEntry) {
  // 100 stores to one word consume one store-buffer slot, not 100.
  config().store_buffer_capacity = 4;
  uint64_t word = 0;
  atomic([&](Txn& txn) {
    for (int i = 0; i < 100; ++i) txn.store(&word, uint64_t(i));
  });
  EXPECT_EQ(word, 99u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.max_write_set, 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kOverflow)], 0u);
}

TEST_F(TxnHotPath, DistinctWordsStillOverflow) {
  config().store_buffer_capacity = 8;
  uint64_t words[16] = {};
  const TryResult r = try_once([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{1});
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kOverflow);
}

TEST_F(TxnHotPath, ReadOnlyCommitLeavesClockUntouched) {
  for (const ClockPolicy policy : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    SCOPED_TRACE(to_string(policy));
    config().clock_policy = policy;
    uint64_t word = 3;
    // Absorb any ahead-of-clock stamp a prior gv5 transaction left on this
    // stack word's orec: the first load may legitimately raise the clock
    // (reader catch-up), which must not count against the read-only commit.
    atomic([&](Txn& txn) { (void)txn.load(&word); });
    reset_stats();
    const uint64_t clock_before =
        global_clock().load(std::memory_order_acquire);
    const uint64_t got = atomic([&](Txn& txn) { return txn.load(&word); });
    EXPECT_EQ(got, 3u);
    EXPECT_EQ(global_clock().load(std::memory_order_acquire), clock_before);
    EXPECT_EQ(aggregate_stats().clock_bumps, 0u);
  }
}

TEST_F(TxnHotPath, UnchangedValueCommitLeavesClockUntouched) {
  for (const ClockPolicy policy : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    SCOPED_TRACE(to_string(policy));
    config().clock_policy = policy;
    uint64_t word = 42;
    // Settle the orec first — see ReadOnlyCommitLeavesClockUntouched.
    atomic([&](Txn& txn) { (void)txn.load(&word); });
    reset_stats();
    const uint64_t clock_before =
        global_clock().load(std::memory_order_acquire);
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word)); });
    EXPECT_EQ(word, 42u);
    EXPECT_EQ(global_clock().load(std::memory_order_acquire), clock_before);
    EXPECT_EQ(aggregate_stats().clock_bumps, 0u);
    EXPECT_EQ(aggregate_stats().writer_commits, 0u);  // silent, not a writer
    EXPECT_EQ(aggregate_stats().commits, 1u);         // it still commits
  }
}

TEST_F(TxnHotPath, ChangedValueCommitStampsPerPolicy) {
  // GV1 advances the shared clock with one fetch_add; GV5 leaves the shared
  // clock alone and stamps the orec past it instead.
  for (const ClockPolicy policy : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    SCOPED_TRACE(to_string(policy));
    config().clock_policy = policy;
    uint64_t word = 1;
    // Settle the orec first — see ReadOnlyCommitLeavesClockUntouched.
    atomic([&](Txn& txn) { (void)txn.load(&word); });
    reset_stats();
    const uint64_t clock_before =
        global_clock().load(std::memory_order_acquire);
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
    EXPECT_EQ(word, 2u);
    const TxnStats s = aggregate_stats();
    EXPECT_EQ(s.writer_commits, 1u);
    if (policy == ClockPolicy::kGv1) {
      EXPECT_GT(global_clock().load(std::memory_order_acquire), clock_before);
      EXPECT_EQ(s.clock_bumps, 1u);
      EXPECT_EQ(s.sloppy_stamps, 0u);
    } else {
      EXPECT_EQ(global_clock().load(std::memory_order_acquire), clock_before);
      EXPECT_EQ(s.clock_bumps, 0u);
      EXPECT_EQ(s.sloppy_stamps, 1u);
    }
  }
}

TEST_F(TxnHotPath, UnchangedValueCommitStillValidatesReads) {
  // A silent (no-op-value) commit is serialized at its lock point, so a
  // write that invalidated this transaction's reads must still abort it —
  // otherwise the silent path would admit lost updates.
  uint64_t a = 1, b = 7;
  bool aborted = false;
  try {
    Txn txn;
    (void)txn.load(&a);
    nontxn_store(&a, uint64_t{2});
    txn.store(&b, uint64_t{7});  // value already in memory
    txn.commit();
  } catch (const TxnAbort& e) {
    aborted = true;
    EXPECT_EQ(e.code, AbortCode::kConflict);
  }
  EXPECT_TRUE(aborted);
}

TEST_F(TxnHotPath, SilentCommitsPreserveInvariantUnderContention) {
  // One writer keeps x == y; a "pinner" rewrites x with the value it just
  // read (usually a silent commit); a reader checks the invariant. The
  // silent path must neither tear the invariant nor swallow the pinner's
  // obligation to abort when its read of x went stale.
  constexpr int kWriterOps = 2000;
  uint64_t x = 0, y = 0;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::thread writer([&] {
    for (int i = 0; i < kWriterOps; ++i) {
      atomic([&](Txn& t) {
        t.store(&x, t.load(&x) + 1);
        t.store(&y, t.load(&y) + 1);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread pinner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      atomic([&](Txn& t) { t.store(&x, t.load(&x)); });
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const auto seen = atomic([&](Txn& t) {
        return std::pair<uint64_t, uint64_t>(t.load(&x), t.load(&y));
      });
      if (seen.first != seen.second) {
        mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  writer.join();
  pinner.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(x, uint64_t{kWriterOps});  // no lost updates via the silent path
  EXPECT_EQ(y, uint64_t{kWriterOps});
}

}  // namespace
}  // namespace dc::htm
