#include <gtest/gtest.h>

#include <thread>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class Stats : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(Stats, CommitsCounted) {
  uint64_t x = 0;
  for (int i = 0; i < 10; ++i) {
    atomic([&](Txn& txn) { txn.store(&x, uint64_t(i)); });
  }
  EXPECT_EQ(aggregate_stats().commits, 10u);
}

TEST_F(Stats, ExplicitAbortsCounted) {
  config().tle_after_aborts = 0;
  uint64_t x = 0;
  int attempts = 0;
  atomic([&](Txn& txn) {
    if (++attempts <= 4) txn.abort(AbortCode::kExplicit);
    txn.store(&x, uint64_t{1});
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 4u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kExplicit)], 4u);
}

TEST_F(Stats, AbortRate) {
  TxnStats s;
  s.commits = 3;
  s.aborts = 1;
  EXPECT_DOUBLE_EQ(s.abort_rate(), 0.25);
  EXPECT_DOUBLE_EQ(TxnStats{}.abort_rate(), 0.0);
}

TEST_F(Stats, AggregationAcrossThreads) {
  std::thread t1([&] {
    uint64_t x = 0;
    for (int i = 0; i < 5; ++i) atomic([&](Txn& txn) { txn.store(&x, uint64_t(i)); });
  });
  std::thread t2([&] {
    uint64_t y = 0;
    for (int i = 0; i < 7; ++i) atomic([&](Txn& txn) { txn.store(&y, uint64_t(i)); });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(aggregate_stats().commits, 12u);
}

TEST_F(Stats, CountsSurviveThreadExit) {
  std::thread([&] {
    uint64_t x = 0;
    atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  }).join();
  EXPECT_EQ(aggregate_stats().commits, 1u);
}

TEST_F(Stats, ResetZeroes) {
  uint64_t x = 0;
  atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  reset_stats();
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.aborts, 0u);
}

TEST_F(Stats, TryOnceRecordsOutcome) {
  uint64_t x = 0;
  const TryResult ok = try_once([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  EXPECT_TRUE(ok.committed);
  EXPECT_EQ(ok.code, AbortCode::kNone);
  const TryResult bad =
      try_once([&](Txn& txn) { txn.abort(AbortCode::kExplicit); });
  EXPECT_FALSE(bad.committed);
  EXPECT_EQ(bad.code, AbortCode::kExplicit);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 1u);
}

TEST_F(Stats, AbortCodeNames) {
  EXPECT_STREQ(to_string(AbortCode::kConflict), "conflict");
  EXPECT_STREQ(to_string(AbortCode::kOverflow), "overflow");
  EXPECT_STREQ(to_string(AbortCode::kExplicit), "explicit");
  EXPECT_STREQ(to_string(AbortCode::kNone), "none");
}

}  // namespace
}  // namespace dc::htm
