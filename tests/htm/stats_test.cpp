#include <gtest/gtest.h>

#include <thread>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class Stats : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(Stats, CommitsCounted) {
  uint64_t x = 0;
  for (int i = 0; i < 10; ++i) {
    atomic([&](Txn& txn) { txn.store(&x, uint64_t(i)); });
  }
  EXPECT_EQ(aggregate_stats().commits, 10u);
}

TEST_F(Stats, ExplicitAbortsCounted) {
  config().tle_after_aborts = 0;
  uint64_t x = 0;
  int attempts = 0;
  atomic([&](Txn& txn) {
    if (++attempts <= 4) txn.abort(AbortCode::kExplicit);
    txn.store(&x, uint64_t{1});
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 4u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kExplicit)], 4u);
}

TEST_F(Stats, AbortRate) {
  TxnStats s;
  s.commits = 3;
  s.aborts = 1;
  EXPECT_DOUBLE_EQ(s.abort_rate(), 0.25);
  EXPECT_DOUBLE_EQ(TxnStats{}.abort_rate(), 0.0);
}

TEST_F(Stats, AggregationAcrossThreads) {
  std::thread t1([&] {
    uint64_t x = 0;
    for (int i = 0; i < 5; ++i) atomic([&](Txn& txn) { txn.store(&x, uint64_t(i)); });
  });
  std::thread t2([&] {
    uint64_t y = 0;
    for (int i = 0; i < 7; ++i) atomic([&](Txn& txn) { txn.store(&y, uint64_t(i)); });
  });
  t1.join();
  t2.join();
  EXPECT_EQ(aggregate_stats().commits, 12u);
}

TEST_F(Stats, CountsSurviveThreadExit) {
  std::thread([&] {
    uint64_t x = 0;
    atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  }).join();
  EXPECT_EQ(aggregate_stats().commits, 1u);
}

TEST_F(Stats, ResetZeroes) {
  uint64_t x = 0;
  atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  reset_stats();
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 0u);
  EXPECT_EQ(s.aborts, 0u);
}

TEST_F(Stats, TryOnceRecordsOutcome) {
  uint64_t x = 0;
  const TryResult ok = try_once([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  EXPECT_TRUE(ok.committed);
  EXPECT_EQ(ok.code, AbortCode::kNone);
  const TryResult bad =
      try_once([&](Txn& txn) { txn.abort(AbortCode::kExplicit); });
  EXPECT_FALSE(bad.committed);
  EXPECT_EQ(bad.code, AbortCode::kExplicit);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.aborts, 1u);
}

TEST_F(Stats, HighWaterMarksTrackDedupedSetSizes) {
  uint64_t words[8] = {};
  atomic([&](Txn& txn) {
    uint64_t sum = 0;
    for (auto& w : words) sum += txn.load(&w);
    txn.store(&words[0], sum + 1);
    txn.store(&words[1], uint64_t{2});
  });
  const TxnStats s = aggregate_stats();
  // 8 distinct words + the TLE lock word read at transaction begin.
  EXPECT_EQ(s.max_read_set, 9u);
  EXPECT_EQ(s.max_write_set, 2u);
}

TEST_F(Stats, ClockBumpsCountOnlyVisibleWritingCommits) {
  for (const ClockPolicy policy : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    SCOPED_TRACE(to_string(policy));
    config().clock_policy = policy;
    reset_stats();
    uint64_t w = 0;
    atomic([&](Txn& t) { t.store(&w, uint64_t{1}); });  // visible write
    atomic([&](Txn& t) { (void)t.load(&w); });          // read-only
    atomic([&](Txn& t) { t.store(&w, uint64_t{1}); });  // unchanged: silent
    const TxnStats s = aggregate_stats();
    EXPECT_EQ(s.commits, 3u);
    EXPECT_EQ(s.writer_commits, 1u);
    if (policy == ClockPolicy::kGv1) {
      EXPECT_EQ(s.clock_bumps, 1u);  // only the visible writing commit
      EXPECT_EQ(s.sloppy_stamps, 0u);
    } else {
      EXPECT_EQ(s.clock_bumps, 0u);  // GV5 never touches the shared clock
      EXPECT_EQ(s.sloppy_stamps, 1u);
    }
  }
}

TEST_F(Stats, NontxnStoreBumpsClockCounter) {
  for (const ClockPolicy policy : {ClockPolicy::kGv1, ClockPolicy::kGv5}) {
    SCOPED_TRACE(to_string(policy));
    config().clock_policy = policy;
    reset_stats();
    uint64_t w = 0;
    nontxn_store(&w, uint64_t{5});
    const TxnStats s = aggregate_stats();
    EXPECT_EQ(s.nontxn_stores, 1u);
    EXPECT_EQ(s.clock_bumps, policy == ClockPolicy::kGv1 ? 1u : 0u);
    EXPECT_EQ(s.sloppy_stamps, policy == ClockPolicy::kGv1 ? 0u : 1u);
  }
}

TEST_F(Stats, AggregationTakesMaxOfHighWaterMarks) {
  TxnStats a, b;
  a.max_read_set = 5;
  a.max_write_set = 3;
  a.clock_bumps = 2;
  a.writer_commits = 1;
  a.sloppy_stamps = 3;
  a.clock_resamples = 1;
  a.clock_catchups = 1;
  a.coalesced_stores = 2;
  b.max_read_set = 9;
  b.max_write_set = 2;
  b.clock_bumps = 4;
  b.writer_commits = 2;
  b.sloppy_stamps = 5;
  b.clock_resamples = 2;
  b.clock_catchups = 3;
  b.coalesced_stores = 4;
  a += b;
  EXPECT_EQ(a.max_read_set, 9u);
  EXPECT_EQ(a.max_write_set, 3u);
  EXPECT_EQ(a.clock_bumps, 6u);
  EXPECT_EQ(a.writer_commits, 3u);
  EXPECT_EQ(a.sloppy_stamps, 8u);
  EXPECT_EQ(a.clock_resamples, 3u);
  EXPECT_EQ(a.clock_catchups, 4u);
  EXPECT_EQ(a.coalesced_stores, 6u);
}

TEST_F(Stats, RegisteredThreadCountIsMonotonic) {
  // This thread's block registers on first use.
  uint64_t x = 0;
  atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  const std::size_t before = registered_thread_count();
  EXPECT_GE(before, 1u);
  std::thread([&] {
    atomic([&](Txn& txn) { txn.store(&x, uint64_t{2}); });
  }).join();
  // The exited thread's block is retained, not reclaimed (retention
  // contract in stats.hpp), so the count only ever grows.
  const std::size_t after = registered_thread_count();
  EXPECT_EQ(after, before + 1);
  reset_stats();
  EXPECT_EQ(registered_thread_count(), after);
}

TEST_F(Stats, ResetZeroesExitedThreadBlocksWithoutFreeing) {
  uint64_t x = 0;
  std::thread([&] {
    atomic([&](Txn& txn) { txn.store(&x, uint64_t{1}); });
  }).join();
  const std::size_t registered = registered_thread_count();
  EXPECT_EQ(aggregate_stats().commits, 1u);
  reset_stats();
  // Zeroed in place: the counters read 0 but the block count is unchanged,
  // and the block keeps accumulating if aggregated again later.
  EXPECT_EQ(aggregate_stats().commits, 0u);
  EXPECT_EQ(registered_thread_count(), registered);
}

TEST_F(Stats, AbortCodeNames) {
  EXPECT_STREQ(to_string(AbortCode::kConflict), "conflict");
  EXPECT_STREQ(to_string(AbortCode::kOverflow), "overflow");
  EXPECT_STREQ(to_string(AbortCode::kExplicit), "explicit");
  EXPECT_STREQ(to_string(AbortCode::kNone), "none");
}

}  // namespace
}  // namespace dc::htm
