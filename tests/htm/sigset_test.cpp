// Unit battery for the signature-validation building blocks: the SigSet
// Bloom filter (htm/sigset.hpp) and the commit-signature ring + in-flight
// writer table (htm/valring.hpp). The properties pinned here are the ones
// the backend's soundness argument leans on:
//  * Bloom no-false-negatives: a shared orec index always intersects;
//  * the ring's stamp filter: entries at or below the reader's snapshot are
//    invisible, entries above it conflict;
//  * wrap safety: once any entry has been evicted, a reader whose snapshot
//    predates the eviction watermark is refused a verdict (fallback), never
//    handed a clean one;
//  * in-flight writers conflict regardless of the snapshot — the signature
//    analog of "orec locked => abort" — except against the scanning
//    thread's own slot.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "htm/sigset.hpp"
#include "htm/valring.hpp"

namespace dc::htm {
namespace {

// Smallest index above `idx` whose two Bloom bits avoid both of idx's —
// a guaranteed non-intersecting singleton for the tests below.
uint64_t disjoint_from(uint64_t idx) {
  const SigSet::Bits a = SigSet::bits_of(idx);
  for (uint64_t j = idx + 1;; ++j) {
    const SigSet::Bits b = SigSet::bits_of(j);
    if (b.first != a.first && b.first != a.second && b.second != a.first &&
        b.second != a.second) {
      return j;
    }
  }
}

TEST(SigSet, AddContainsClear) {
  SigSet s;
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.maybe_contains(3));
  s.add(3);
  EXPECT_FALSE(s.empty());
  EXPECT_TRUE(s.maybe_contains(3));
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.maybe_contains(3));
}

TEST(SigSet, NoFalseNegatives) {
  // The load-bearing Bloom property: membership and intersection never
  // under-report, for every element ever added.
  SigSet reads;
  for (uint64_t i = 0; i < 1000; ++i) reads.add(i * 7919);
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(reads.maybe_contains(i * 7919)) << i;
    SigSet single;
    single.add(i * 7919);
    EXPECT_TRUE(reads.intersects(single)) << i;
  }
}

TEST(SigSet, DisjointBitsDoNotIntersect) {
  const uint64_t a = 12345;
  const uint64_t b = disjoint_from(a);
  SigSet sa, sb;
  sa.add(a);
  sb.add(b);
  EXPECT_FALSE(sa.intersects(sb));
  EXPECT_FALSE(sb.intersects(sa));
  EXPECT_FALSE(sa.maybe_contains(b));
}

TEST(SigSet, BitsOfSpreadsAdjacentIndices) {
  // Adjacent orec indices differ in low bits only; the Fibonacci mix must
  // still give them distinct signatures (else neighboring words in one
  // cache line would permanently alias).
  const SigSet::Bits b0 = SigSet::bits_of(0);
  const SigSet::Bits b1 = SigSet::bits_of(1);
  EXPECT_TRUE(b0.first != b1.first || b0.second != b1.second);
  // Each index's two positions are drawn from disjoint runs of the product;
  // they can coincide for some index, but not for these smoke values.
  EXPECT_NE(b0.first, b0.second);
  EXPECT_NE(b1.first, b1.second);
}

TEST(SigRing, StampFilterAgainstSnapshot) {
  sigring::reset();
  SigSet w;
  w.add(42);
  sigring::publish(w, 100);
  EXPECT_EQ(sigring::published_count(), 1u);

  SigSet r;
  r.add(42);
  // Snapshot covers the entry: invisible.
  EXPECT_EQ(sigring::scan(r, 100).outcome, sigring::ScanOutcome::kValid);
  // Snapshot predates it: conflict, carrying the stamp for clock catch-up.
  const sigring::ScanResult hit = sigring::scan(r, 99);
  EXPECT_EQ(hit.outcome, sigring::ScanOutcome::kConflict);
  EXPECT_EQ(hit.hit_stamp, 100u);
  // A disjoint read signature passes even against a newer entry.
  SigSet disjoint;
  disjoint.add(disjoint_from(42));
  EXPECT_EQ(sigring::scan(disjoint, 0).outcome,
            sigring::ScanOutcome::kValid);
  sigring::reset();
}

TEST(SigRing, WrapForcesFallbackForPredatingSnapshots) {
  sigring::reset();
  SigSet w;
  w.add(42);
  // Fill every slot; overwriting the initial zero-stamp slots evicts
  // nothing real, so the watermark stays at zero.
  for (uint64_t i = 1; i <= sigring::kRingSize; ++i) sigring::publish(w, i);
  EXPECT_EQ(sigring::evicted_watermark(), 0u);
  // One more publish evicts the stamp-1 entry.
  sigring::publish(w, sigring::kRingSize + 1);
  EXPECT_GE(sigring::evicted_watermark(), 1u);
  // A reader whose snapshot predates the eviction gets no verdict — even
  // with a read signature disjoint from everything ever published.
  SigSet disjoint;
  disjoint.add(disjoint_from(42));
  EXPECT_EQ(sigring::scan(disjoint, 0).outcome,
            sigring::ScanOutcome::kFallback);
  // A snapshot covering the watermark (and every live stamp) is fine.
  EXPECT_EQ(sigring::scan(disjoint, sigring::kRingSize + 1).outcome,
            sigring::ScanOutcome::kValid);
  sigring::reset();
}

TEST(SigRing, InflightWriterConflictsRegardlessOfSnapshot) {
  sigring::reset();
  std::atomic<bool> parked{false};
  std::atomic<bool> release{false};
  SigSet w;
  w.add(5);
  std::thread writer([&] {
    sigring::begin_inflight(w);
    parked.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    sigring::end_inflight();
  });
  while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();

  SigSet r;
  r.add(5);
  // The snapshot is irrelevant: the writer's stamp does not exist yet.
  const sigring::ScanResult hit = sigring::scan(r, ~uint64_t{0} >> 1);
  EXPECT_EQ(hit.outcome, sigring::ScanOutcome::kConflict);
  EXPECT_EQ(hit.hit_stamp, 0u);  // in-flight hits carry no stamp
  // Disjoint readers still pass.
  SigSet disjoint;
  disjoint.add(disjoint_from(5));
  EXPECT_EQ(sigring::scan(disjoint, 0).outcome,
            sigring::ScanOutcome::kValid);

  release.store(true, std::memory_order_release);
  writer.join();
  // Occupancy bit dropped: the parked garbage is masked off.
  EXPECT_EQ(sigring::scan(r, ~uint64_t{0} >> 1).outcome,
            sigring::ScanOutcome::kValid);
  sigring::reset();
}

TEST(SigRing, OwnInflightSlotIsSkipped) {
  // A committing transaction whose write set overlaps its own read set must
  // not abort on its own parked signature.
  sigring::reset();
  SigSet w;
  w.add(9);
  sigring::begin_inflight(w);
  EXPECT_EQ(sigring::scan(w, 0).outcome, sigring::ScanOutcome::kValid);
  sigring::end_inflight();
  sigring::reset();
}

}  // namespace
}  // namespace dc::htm
