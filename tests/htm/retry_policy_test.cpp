// Cause-aware retry policy (htm/retry.hpp): overflow escalates straight to
// the lock, spurious aborts retry immediately, conflicts back off, and
// sustained conflict storms flip the call-site into sticky serialized mode
// with hysteresis on the way out.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "htm/fault.hpp"
#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class RetryPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    fault::clear_script();
    reset_stats();
    reset_storm_sites();
    fault::reset_thread();
  }
  void TearDown() override {
    fault::clear_script();
    config() = saved_;
    reset_storm_sites();
  }
  Config saved_;
};

TEST_F(RetryPolicyTest, ParseAndNames) {
  RetryPolicy p = RetryPolicy::kFixed;
  EXPECT_TRUE(parse_retry_policy("cause", p));
  EXPECT_EQ(p, RetryPolicy::kCauseAware);
  EXPECT_TRUE(parse_retry_policy("fixed", p));
  EXPECT_EQ(p, RetryPolicy::kFixed);
  EXPECT_FALSE(parse_retry_policy("bogus", p));
  EXPECT_STREQ(to_string(RetryPolicy::kCauseAware), "cause");
  EXPECT_STREQ(to_string(RetryPolicy::kFixed), "fixed");
}

TEST_F(RetryPolicyTest, OverflowEscalatesAfterOneAbortUnderCauseAware) {
  // A body that overflows the store buffer is deterministic: re-executing
  // it speculatively can only overflow again. The cause-aware policy takes
  // the lock after the first overflow instead of burning the whole
  // tle_after_aborts budget.
  config().retry_policy = RetryPolicy::kCauseAware;
  config().store_buffer_capacity = 2;
  config().tle_after_aborts = 64;
  std::vector<uint64_t> words(8, 0);
  atomic([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{1});
  });
  for (const uint64_t w : words) EXPECT_EQ(w, 1u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kOverflow)], 1u);
  EXPECT_EQ(s.tle_entries, 1u);
  EXPECT_EQ(s.lock_fallbacks, 1u);
}

TEST_F(RetryPolicyTest, OverflowBurnsFullThresholdUnderFixed) {
  // The legacy policy treats every cause alike: tle_after_aborts failed
  // attempts before the lock, overflow included.
  config().retry_policy = RetryPolicy::kFixed;
  config().store_buffer_capacity = 2;
  config().tle_after_aborts = 6;
  std::vector<uint64_t> words(8, 0);
  atomic([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{1});
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kOverflow)], 6u);
  EXPECT_EQ(s.tle_entries, 1u);
}

TEST_F(RetryPolicyTest, SpuriousAbortsRetrySpeculativelyWithoutEscalating) {
  // Three scripted transient faults, then a clean attempt: the cause-aware
  // policy must keep the block speculative (the budget is generous) and
  // never touch the lock.
  config().retry_policy = RetryPolicy::kCauseAware;
  config().tle_after_aborts = 64;
  fault::set_script({
      {fault::kAnyThread, 0, 0, AbortCode::kInterrupt, 0},
      {fault::kAnyThread, 0, 1, AbortCode::kTlbMiss, 0},
      {fault::kAnyThread, 0, 2, AbortCode::kSaveRestore, 0},
  });
  fault::reset_thread();
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{5}); });
  EXPECT_EQ(word, 5u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 3u);
  EXPECT_EQ(s.lock_fallbacks, 0u);
  EXPECT_EQ(s.tle_entries, 0u);
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.max_consec_aborts, 3u);
}

TEST_F(RetryPolicyTest, StormEntersStickySerializedModeAndRecovers) {
  config().retry_policy = RetryPolicy::kCauseAware;
  config().tle_after_aborts = 1000;  // keep plain escalation out of the way
  config().storm_enter_score = 8;
  config().storm_exit_score = 2;
  int fail_remaining = 6;
  uint64_t word = 0;
  auto body = [&](Txn& txn) {
    txn.store(&word, txn.load(&word) + 1);
    if (fail_remaining > 0) {
      --fail_remaining;
      txn.abort(AbortCode::kConflict);
    }
  };
  // One call suffers 6 conflict aborts. Abort weight 2 crosses the enter
  // score of 8 on the 4th; the remaining attempts (and the final commit)
  // run under the lock.
  atomic(body);
  EXPECT_EQ(word, 1u);
  TxnStats s = aggregate_stats();
  EXPECT_EQ(s.storm_entries, 1u);
  EXPECT_EQ(s.storm_exits, 0u);
  EXPECT_GE(s.lock_fallbacks, 1u);
  EXPECT_EQ(storm_serialized_sites(), 1u);
  // Sticky: the next blocks at this site run serialized even though they
  // would commit first-try speculatively. Commits drain the score by 1
  // each; with the score at 8 after entry and exit at <= 2, the 6th commit
  // (the 7th block overall) leaves serialized mode.
  const uint64_t fallbacks_after_entry = s.lock_fallbacks;
  for (int i = 0; i < 10; ++i) atomic(body);
  EXPECT_EQ(word, 11u);
  s = aggregate_stats();
  EXPECT_EQ(s.storm_entries, 1u);
  EXPECT_EQ(s.storm_exits, 1u);
  EXPECT_EQ(storm_serialized_sites(), 0u);
  // Some of the 10 recovery blocks ran under the lock, but not all: the
  // site left serialized mode mid-sequence.
  const uint64_t recovery_fallbacks = s.lock_fallbacks - fallbacks_after_entry;
  EXPECT_GE(recovery_fallbacks, 1u);
  EXPECT_LT(recovery_fallbacks, 10u);
}

TEST_F(RetryPolicyTest, StormDetectionCanBeDisabled) {
  config().retry_policy = RetryPolicy::kCauseAware;
  config().tle_after_aborts = 1000;
  config().storm_detection = false;
  config().storm_enter_score = 2;  // would trip instantly if enabled
  int fail_remaining = 8;
  uint64_t word = 0;
  atomic([&](Txn& txn) {
    txn.store(&word, txn.load(&word) + 1);
    if (fail_remaining > 0) {
      --fail_remaining;
      txn.abort(AbortCode::kConflict);
    }
  });
  EXPECT_EQ(word, 1u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.storm_entries, 0u);
  EXPECT_EQ(s.lock_fallbacks, 0u);
  EXPECT_EQ(storm_serialized_sites(), 0u);
}

TEST_F(RetryPolicyTest, MaxConsecAbortsTracksTheWorstBlock) {
  config().tle_after_aborts = 0;  // never escalate; pure retry
  config().storm_detection = false;
  uint64_t word = 0;
  auto run_with_aborts = [&](int aborts) {
    int remaining = aborts;
    atomic([&](Txn& txn) {
      txn.store(&word, txn.load(&word) + 1);
      if (remaining > 0) {
        --remaining;
        txn.abort(AbortCode::kExplicit);
      }
    });
  };
  run_with_aborts(2);
  run_with_aborts(7);  // the high-water mark
  run_with_aborts(4);
  EXPECT_EQ(aggregate_stats().max_consec_aborts, 7u);
}

TEST_F(RetryPolicyTest, FixedPolicyStillEscalatesSpuriousStorms) {
  // Liveness backstop: even under kFixed, a 100% fault storm must complete
  // via the lock (injection never arms lock-mode attempts).
  config().retry_policy = RetryPolicy::kFixed;
  config().tle_after_aborts = 4;
  config().fault.rate = 1.0;
  fault::reset_thread();
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{3}); });
  EXPECT_EQ(word, 3u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 4u);
  EXPECT_EQ(s.tle_entries, 1u);
  EXPECT_EQ(s.commits, 1u);
}

}  // namespace
}  // namespace dc::htm
