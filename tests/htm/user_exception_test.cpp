// A non-TxnAbort exception thrown by an atomic body must doom the attempt
// (orec locks released, buffered stores discarded) and propagate to the
// caller without retrying — and must leave the substrate healthy enough for
// the next transaction.
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class UserException : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    reset_stats();
    reset_storm_sites();
  }
  void TearDown() override {
    config() = saved_;
    reset_storm_sites();
  }
  Config saved_;
};

TEST_F(UserException, PropagatesWithoutCommittingOrRetrying) {
  uint64_t word = 0;
  int body_runs = 0;
  EXPECT_THROW(atomic([&](Txn& txn) {
                 ++body_runs;
                 txn.store(&word, uint64_t{99});
                 throw std::runtime_error("user bailout");
               }),
               std::runtime_error);
  EXPECT_EQ(body_runs, 1) << "a user exception must not be retried";
  EXPECT_EQ(word, 0u) << "buffered stores must be discarded";
  EXPECT_EQ(aggregate_stats().commits, 0u);
}

TEST_F(UserException, SubstrateStaysUsableAfterUnwind) {
  // The doomed attempt held the orec commit locks at no point (lazy
  // versioning), but the unwind path still must leave no locked orecs and
  // no held TLE lock: a fresh transaction on the same words must commit.
  uint64_t word = 0;
  EXPECT_THROW(atomic([&](Txn& txn) {
                 txn.store(&word, uint64_t{1});
                 throw std::runtime_error("boom");
               }),
               std::runtime_error);
  atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 5); });
  EXPECT_EQ(word, 5u);
}

TEST_F(UserException, LockModeUnwindReleasesTheFallbackLock) {
  config().serialize_all = true;
  uint64_t word = 0;
  EXPECT_THROW(atomic([&](Txn& txn) {
                 txn.store(&word, uint64_t{1});
                 throw std::runtime_error("boom under lock");
               }),
               std::runtime_error);
  EXPECT_EQ(word, 0u) << "lock-mode stores drain through the same doom path";
  // Deadlock check: the TLE lock must have been released by the unwind.
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{2}); });
  EXPECT_EQ(word, 2u);
}

TEST_F(UserException, TryOncePropagatesAndDooms) {
  uint64_t word = 0;
  EXPECT_THROW(try_once([&](Txn& txn) {
                 txn.store(&word, uint64_t{1});
                 throw std::logic_error("boom");
               }),
               std::logic_error);
  EXPECT_EQ(word, 0u);
  const TryResult r =
      try_once([&](Txn& txn) { txn.store(&word, uint64_t{3}); });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(word, 3u);
}

TEST_F(UserException, TxnAbortIsNotTreatedAsUserError) {
  // txn.abort() must keep flowing to the retry loop, not the doom path: the
  // block retries and eventually commits.
  uint64_t word = 0;
  int remaining = 2;
  atomic([&](Txn& txn) {
    txn.store(&word, txn.load(&word) + 1);
    if (remaining > 0) {
      --remaining;
      txn.abort(AbortCode::kExplicit);
    }
  });
  EXPECT_EQ(word, 1u);
  EXPECT_EQ(aggregate_stats().commits, 1u);
  EXPECT_EQ(aggregate_stats()
                .aborts_by_code[static_cast<int>(AbortCode::kExplicit)],
            2u);
}

}  // namespace
}  // namespace dc::htm
