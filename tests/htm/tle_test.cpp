// Transactional Lock Elision fallback (paper §6): when transactions fail
// repeatedly, the block runs under a global lock, preserving atomicity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class Tle : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = config(); }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(Tle, OverflowingBlockCompletesViaLock) {
  // A block that always overflows the store buffer can never commit
  // speculatively; with TLE it must still complete.
  config().store_buffer_capacity = 4;
  config().tle_after_aborts = 3;
  std::vector<uint64_t> words(16, 0);
  atomic([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{1});
  });
  for (const uint64_t w : words) EXPECT_EQ(w, 1u);
  EXPECT_GE(aggregate_stats().lock_fallbacks, 1u);
}

TEST_F(Tle, LockFallbackRecordsAborts) {
  // Pin the legacy fixed-threshold policy: the cause-aware default
  // escalates deterministic overflows to the lock after a single abort
  // (covered by retry_policy_test), so the exact count of 5 burned
  // attempts only holds under RetryPolicy::kFixed.
  config().retry_policy = RetryPolicy::kFixed;
  config().store_buffer_capacity = 2;
  config().tle_after_aborts = 5;
  reset_stats();
  std::vector<uint64_t> words(8, 0);
  atomic([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{2});
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kOverflow)], 5u);
  EXPECT_EQ(s.lock_fallbacks, 1u);
}

TEST_F(Tle, AtomicityPreservedAcrossLockAndSpeculativePaths) {
  // Mix: some threads run small (speculative) increments, others run
  // blocks that exceed the store buffer and must take the lock. The
  // counter total must still be exact — lock-mode and speculative
  // executions must be mutually atomic.
  config().store_buffer_capacity = 4;
  config().tle_after_aborts = 2;
  uint64_t counter = 0;
  std::vector<uint64_t> wide(8, 0);
  constexpr int kSmallOps = 2000;
  constexpr int kWideOps = 300;
  std::thread small_thread([&] {
    for (int i = 0; i < kSmallOps; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  std::thread wide_thread([&] {
    for (int i = 0; i < kWideOps; ++i) {
      atomic([&](Txn& txn) {
        // Exceeds the 4-entry store buffer: 8 stores + the counter.
        const uint64_t c = txn.load(&counter);
        for (auto& w : wide) txn.store(&w, c);
        txn.store(&counter, c + 1);
      });
    }
  });
  small_thread.join();
  wide_thread.join();
  EXPECT_EQ(counter, uint64_t{kSmallOps} + kWideOps);
  // All wide words carry the same snapshot value (written atomically).
  for (const uint64_t w : wide) EXPECT_EQ(w, wide[0]);
}

TEST_F(Tle, ReadersNeverSeePartialLockModeWrites) {
  config().store_buffer_capacity = 4;
  config().tle_after_aborts = 1;
  uint64_t x = 0, y = 0;
  std::vector<uint64_t> filler(8, 0);
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      atomic([&](Txn& txn) {
        txn.store(&x, v);
        for (auto& f : filler) txn.store(&f, v);  // forces lock fallback
        txn.store(&y, v);
      });
    }
  });
  for (int i = 0; i < 10000; ++i) {
    atomic([&](Txn& txn) {
      const uint64_t a = txn.load(&x);
      const uint64_t b = txn.load(&y);
      if (a != b) torn.store(true);
    });
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(torn.load());
}

TEST_F(Tle, DisabledTleNeverTakesLock) {
  config().tle_after_aborts = 0;
  reset_stats();
  uint64_t x = 0;
  for (int i = 0; i < 100; ++i) {
    atomic([&](Txn& txn) { txn.store(&x, txn.load(&x) + 1); });
  }
  EXPECT_EQ(aggregate_stats().lock_fallbacks, 0u);
}

TEST_F(Tle, ExplicitAbortUnderLockRetries) {
  config().tle_after_aborts = 1;
  config().store_buffer_capacity = 1;
  int calls = 0;
  uint64_t a = 0, b = 0;
  atomic([&](Txn& txn) {
    ++calls;
    txn.store(&a, uint64_t{1});
    txn.store(&b, uint64_t{1});  // overflows (capacity 1) when speculative
    if (calls < 4) txn.abort(AbortCode::kExplicit);  // also abort under lock
  });
  EXPECT_GE(calls, 4);
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 1u);
}

}  // namespace
}  // namespace dc::htm
