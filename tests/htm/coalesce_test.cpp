// Commit-time write coalescing (Config::enable_write_coalescing): runs of
// buffered sub-word stores that exactly tile one aligned 8-byte word are
// written back — and pre-checked by the silent-commit scan — as a single
// 8-byte access. These tests pin the stat's exact accounting, the
// word-atomicity the single store buys (a non-transactional reader of the
// containing word can never see a half-applied run), that transactional
// readers see whole runs or nothing with coalescing on or off, and that
// aborts discard buffered runs untouched.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <thread>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

// Coalescing is compiled-in but disabled on big-endian hosts (the packer
// shifts little-endian); the byte-level expectations below assume it too.
constexpr bool kLittleEndian = std::endian::native == std::endian::little;

class Coalesce : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kLittleEndian) GTEST_SKIP() << "coalescing is little-endian only";
    saved_ = config();
    config().enable_write_coalescing = true;
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(Coalesce, ExactlyTiledByteRunCountsAsOneStore) {
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf = {};
  atomic([&](Txn& t) {
    for (int i = 0; i < 8; ++i) t.store(&buf.b[i], uint8_t(i + 1));
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf.b[i], uint8_t(i + 1));
  // 8 entries folded into one 8-byte store: 7 saved.
  EXPECT_EQ(aggregate_stats().coalesced_stores, 7u);
}

TEST_F(Coalesce, MixedSizeTilingCoalesces) {
  struct alignas(8) Mixed {
    uint32_t a;
    uint16_t b;
    uint16_t c;
  } m = {};
  atomic([&](Txn& t) {
    t.store(&m.c, uint16_t{0x7788});  // insertion order is irrelevant:
    t.store(&m.a, 0x11223344u);       // the write set sorts by address
    t.store(&m.b, uint16_t{0x5566});
  });
  EXPECT_EQ(m.a, 0x11223344u);
  EXPECT_EQ(m.b, 0x5566u);
  EXPECT_EQ(m.c, 0x7788u);
  EXPECT_EQ(aggregate_stats().coalesced_stores, 2u);
}

TEST_F(Coalesce, GappedRunDoesNotCoalesce) {
  // A gap would force a read-modify-write of bytes the transaction never
  // stored, so only exact tiling may fold.
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf = {};
  atomic([&](Txn& t) {
    t.store(&buf.b[0], uint8_t{1});
    t.store(&buf.b[2], uint8_t{2});
    t.store(&buf.b[4], uint8_t{3});
  });
  EXPECT_EQ(buf.b[0], 1u);
  EXPECT_EQ(buf.b[1], 0u);
  EXPECT_EQ(buf.b[2], 2u);
  EXPECT_EQ(buf.b[4], 3u);
  EXPECT_EQ(aggregate_stats().coalesced_stores, 0u);
}

TEST_F(Coalesce, DisabledConfigCoalescesNothing) {
  config().enable_write_coalescing = false;
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf = {};
  atomic([&](Txn& t) {
    for (int i = 0; i < 8; ++i) t.store(&buf.b[i], uint8_t(i + 1));
  });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf.b[i], uint8_t(i + 1));
  EXPECT_EQ(aggregate_stats().coalesced_stores, 0u);
}

TEST_F(Coalesce, ReadOwnWritesWithOutOfOrderSubWordStores) {
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf = {};
  atomic([&](Txn& t) {
    t.store(&buf.b[6], uint8_t{7});
    t.store(&buf.b[0], uint8_t{1});
    t.store(&buf.b[3], uint8_t{4});
    EXPECT_EQ(t.load(&buf.b[6]), 7u);
    EXPECT_EQ(t.load(&buf.b[0]), 1u);
    EXPECT_EQ(t.load(&buf.b[3]), 4u);
    t.store(&buf.b[0], uint8_t{9});  // overwrite dedups in place
    EXPECT_EQ(t.load(&buf.b[0]), 9u);
  });
  EXPECT_EQ(buf.b[0], 9u);
  EXPECT_EQ(buf.b[1], 0u);
  EXPECT_EQ(buf.b[3], 4u);
  EXPECT_EQ(buf.b[6], 7u);
}

TEST_F(Coalesce, TiledSilentCommitStaysSilent) {
  // A run whose packed value equals memory is a silent commit: the packed
  // single-load compare must not misread it as a visible write.
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf;
  for (int i = 0; i < 8; ++i) buf.b[i] = uint8_t(0xA0 + i);
  atomic([&](Txn& t) {
    for (int i = 0; i < 8; ++i) t.store(&buf.b[i], uint8_t(0xA0 + i));
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 1u);
  EXPECT_EQ(s.writer_commits, 0u);   // observably read-only
  EXPECT_EQ(s.coalesced_stores, 0u);  // no write-back ran at all
}

TEST_F(Coalesce, NontxnReaderNeverSeesTornRun) {
  // The atomicity coalescing buys: an uncoalesced write-back applies a
  // tiled run as 8 separate byte stores, which a nontxn_load of the
  // containing word may observe half-done; the coalesced write-back is one
  // 8-byte store, so the word can only flicker between whole run values.
  alignas(8) static uint8_t bytes[8] = {};
  constexpr uint64_t kPatternA = 0x1111111111111111ULL;
  constexpr uint64_t kPatternB = 0x2222222222222222ULL;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::thread writer([&] {
    for (int i = 0; i < 4000; ++i) {
      const uint8_t v = (i & 1) != 0 ? 0x22 : 0x11;
      atomic([&](Txn& t) {
        for (int b = 0; b < 8; ++b) t.store(&bytes[b], v);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const uint64_t v =
          nontxn_load(reinterpret_cast<const uint64_t*>(bytes));
      if (v != 0 && v != kPatternA && v != kPatternB) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GT(aggregate_stats().coalesced_stores, 0u);
}

// Per-orec atomicity must hold with coalescing on AND off — transactional
// readers go through the orec version sandwich, so they may never observe a
// partially applied run either way. Parameterized to catch a regression
// where coalescing writes back outside the lock window.
class CoalesceAtomicity : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    if (!kLittleEndian) GTEST_SKIP() << "coalescing is little-endian only";
    saved_ = config();
    config().enable_write_coalescing = GetParam();
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_P(CoalesceAtomicity, TxnReaderSeesWholeRunOrNothing) {
  alignas(8) static uint8_t bytes[8];
  for (auto& b : bytes) b = 0x33;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::thread writer([&] {
    for (int i = 0; i < 3000; ++i) {
      const uint8_t v = (i & 1) != 0 ? 0x44 : 0x33;
      atomic([&](Txn& t) {
        for (int b = 0; b < 8; ++b) t.store(&bytes[b], v);
      });
    }
    stop.store(true, std::memory_order_release);
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      atomic([&](Txn& t) {
        const uint8_t first = t.load(&bytes[0]);
        for (int b = 1; b < 8; ++b) {
          if (t.load(&bytes[b]) != first) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST_P(CoalesceAtomicity, AbortDiscardsBufferedRun) {
  struct alignas(8) Buf {
    uint8_t b[8];
  } buf;
  for (auto& b : buf.b) b = 0xAA;
  const TryResult r = try_once([&](Txn& t) {
    for (int i = 0; i < 8; ++i) t.store(&buf.b[i], uint8_t(i));
    t.abort(AbortCode::kExplicit);
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kExplicit);
  for (const uint8_t b : buf.b) EXPECT_EQ(b, 0xAAu);
  EXPECT_EQ(aggregate_stats().coalesced_stores, 0u);
}

INSTANTIATE_TEST_SUITE_P(OnOff, CoalesceAtomicity, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Coalesced" : "PerEntry";
                         });

}  // namespace
}  // namespace dc::htm
