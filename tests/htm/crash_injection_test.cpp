// Thread-death injection (htm/crash.hpp): a killed thread abandons its
// state without cleanup, and the substrate must make that invisible to
// survivors — no partial commits, no stuck TLE lock, no abort-ledger
// pollution. With injection off the crash layer must be provably dormant.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "htm/crash.hpp"
#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class CrashInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    crash::reset_all();
    reset_stats();
    reset_storm_sites();
  }
  void TearDown() override {
    config() = saved_;
    crash::reset_all();
  }
  Config saved_;
};

TEST_F(CrashInjection, OffByDefault) {
  EXPECT_FALSE(crash::injection_enabled());
  EXPECT_FALSE(crash::self_dead());
  uint64_t word = 0;
  for (int i = 0; i < 100; ++i) {
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
  }
  EXPECT_EQ(word, 100u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.crashes_injected, 0u);
  EXPECT_EQ(s.lock_recoveries, 0u);
  EXPECT_EQ(s.orphans_reaped, 0u);
}

TEST_F(CrashInjection, MidTransactionDeathIsAllOrNothing) {
  // Die on the second transactional op: the first buffered store must be
  // discarded with the rest — nothing of the block reaches memory.
  uint64_t a = 0, b = 0;
  crash::schedule_self(crash::Point::kTxnOp, /*blocks_from_now=*/0,
                       /*after_ops=*/1);
  const bool survived = crash::run_victim([&] {
    atomic([&](Txn& txn) {
      txn.store(&a, uint64_t{1});
      txn.store(&b, uint64_t{2});
    });
  });
  EXPECT_FALSE(survived);
  EXPECT_TRUE(crash::self_dead());
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 0u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.crashes_injected, 1u);
  EXPECT_EQ(s.commits, 0u);
}

TEST_F(CrashInjection, CommitEntryDeathDiscardsTheWriteSet) {
  // The body runs to completion but the commit instruction never executes:
  // the write set is still buffered and must vanish with the thread.
  uint64_t word = 0;
  crash::schedule_self(crash::Point::kCommitEntry, /*blocks_from_now=*/0,
                       /*after_ops=*/~0u);
  const bool survived = crash::run_victim(
      [&] { atomic([&](Txn& txn) { txn.store(&word, uint64_t{7}); }); });
  EXPECT_FALSE(survived);
  EXPECT_EQ(word, 0u);
  EXPECT_EQ(aggregate_stats().crashes_injected, 1u);
}

TEST_F(CrashInjection, CrashIsNotAnAbort) {
  // A dying thread is not a doomed attempt: no abort is recorded, no retry
  // runs, and the crash shows up only in crashes_injected.
  uint64_t word = 0;
  crash::schedule_self(crash::Point::kTxnOp);
  (void)crash::run_victim(
      [&] { atomic([&](Txn& txn) { txn.store(&word, uint64_t{1}); }); });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.crashes_injected, 1u);
  EXPECT_EQ(s.aborts, 0u);
  EXPECT_EQ(s.commits, 0u);
}

TEST_F(CrashInjection, DeadThreadRunsNoFurtherKills) {
  // After death the thread's plan() never fires again (the thread is gone;
  // what runs afterwards is the test harness), and reset_thread revives it.
  crash::schedule_self(crash::Point::kTxnOp);
  (void)crash::run_victim([&] {
    uint64_t w = 0;
    atomic([&](Txn& txn) { txn.store(&w, uint64_t{1}); });
  });
  EXPECT_TRUE(crash::self_dead());
  crash::reset_thread();
  EXPECT_FALSE(crash::self_dead());
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{3}); });
  EXPECT_EQ(word, 3u);
}

TEST_F(CrashInjection, LockHeldDeathIsRecoveredByAWaiter) {
  // The victim dies while holding the TLE fallback lock (the scripted
  // kLockHeld point forces the block onto the lock first). The lock word
  // must be left stamped with the dead owner, and the next thread that
  // needs the lock must detect the orphan, steal it, and make progress.
  uint64_t word = 0;
  std::thread victim([&] {
    crash::reset_thread();
    crash::schedule_self(crash::Point::kLockHeld);
    const bool survived = crash::run_victim(
        [&] { atomic([&](Txn& txn) { txn.store(&word, uint64_t{1}); }); });
    EXPECT_FALSE(survived);
  });
  victim.join();
  EXPECT_EQ(word, 0u);
  EXPECT_NE(nontxn_load(detail::tle_lock_word()), 0u)
      << "the dead owner's stamp must remain on the lock word";
  // Survivor: speculative attempts see the lock held and abort; the retry
  // controller escalates to tle_acquire, which validates the owner's death
  // and steals the stamp.
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{2}); });
  EXPECT_EQ(word, 2u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.crashes_injected, 1u);
  EXPECT_GE(s.lock_recoveries, 1u);
  EXPECT_EQ(nontxn_load(detail::tle_lock_word()), 0u);
}

TEST_F(CrashInjection, RateKillsOnlyOptedInThreads) {
  // rate = 1 kills every opted-in block, but the calling thread never opted
  // in — it must be immortal. A run_victim body on the same thread dies on
  // its first block.
  config().crash.rate = 1.0;
  uint64_t word = 0;
  for (int i = 0; i < 10; ++i) {
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
  }
  EXPECT_EQ(word, 10u);
  EXPECT_EQ(aggregate_stats().crashes_injected, 0u);
  const bool survived = crash::run_victim(
      [&] { atomic([&](Txn& txn) { txn.store(&word, uint64_t{0}); }); });
  EXPECT_FALSE(survived);
  EXPECT_EQ(word, 10u);
  EXPECT_EQ(aggregate_stats().crashes_injected, 1u);
}

TEST_F(CrashInjection, ScriptedKillHitsTheNamedBlock) {
  // Only block 2 (the third atomic call since reset) is scripted; the
  // victim survives blocks 0 and 1 untouched.
  crash::set_script({{crash::kAnyThread, /*block=*/2,
                      crash::Point::kTxnOp, /*after_ops=*/0}});
  crash::reset_thread();
  uint64_t word = 0;
  int completed = 0;
  const bool survived = crash::run_victim([&] {
    for (int i = 0; i < 4; ++i) {
      atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
      ++completed;
    }
  });
  EXPECT_FALSE(survived);
  EXPECT_EQ(completed, 2);
  EXPECT_EQ(word, 2u);
  EXPECT_EQ(aggregate_stats().crashes_injected, 1u);
}

TEST_F(CrashInjection, TokensOutliveIdRecycling) {
  // A dead incarnation's token stays orphaned even after reset revives the
  // slot with a fresh epoch — exactly the property the lock stamp and the
  // lease table rely on.
  crash::Token before{};
  std::thread victim([&] {
    crash::reset_thread();
    before = crash::self_token();
    EXPECT_FALSE(crash::token_orphaned(before));
    crash::mark_dead();
    EXPECT_TRUE(crash::token_orphaned(before));
  });
  victim.join();
  EXPECT_TRUE(crash::token_orphaned(before));
  crash::reset_all();  // revives the slot under a fresh epoch...
  EXPECT_TRUE(crash::token_orphaned(before)) << "...which must not resurrect "
                                                "the dead incarnation";
}

}  // namespace
}  // namespace dc::htm
