// Deterministic spurious-abort injection (htm/fault.hpp): the Rock
// best-effort fault model. Scripted schedules must hit exactly the attempt
// they name; rate-based streams must be deterministic per (seed, thread);
// with injection off the substrate must be provably fault-free.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "htm/fault.hpp"
#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    fault::clear_script();
    reset_stats();
    reset_storm_sites();
    fault::reset_thread();
  }
  void TearDown() override {
    fault::clear_script();
    config() = saved_;
    fault::reset_thread();
  }
  Config saved_;
};

TEST_F(FaultInjection, OffByDefault) {
  EXPECT_FALSE(fault::injection_enabled());
  uint64_t word = 0;
  for (int i = 0; i < 100; ++i) {
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
  }
  EXPECT_EQ(word, 100u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 0u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kInterrupt)], 0u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kTlbMiss)], 0u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kSaveRestore)], 0u);
}

TEST_F(FaultInjection, ScriptedAbortHitsTheNamedAttempt) {
  // Kill attempt 0 of the first block after it survives one op; the retry
  // (attempt 1) must commit untouched.
  fault::set_script({{fault::kAnyThread, 0, /*attempt=*/0,
                      AbortCode::kTlbMiss, /*after_ops=*/1}});
  fault::reset_thread();
  uint64_t a = 0, b = 0;
  atomic([&](Txn& txn) {
    txn.store(&a, uint64_t{1});
    txn.store(&b, uint64_t{2});
  });
  EXPECT_EQ(a, 1u);
  EXPECT_EQ(b, 2u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kTlbMiss)], 1u);
  EXPECT_EQ(s.commits, 1u);
}

TEST_F(FaultInjection, ScriptedAbortPastBodyOpsFiresAtCommit) {
  // after_ops larger than the body's op count: the attempt reaches commit()
  // and must still abort there — an armed attempt never commits.
  fault::set_script({{fault::kAnyThread, 0, 0, AbortCode::kInterrupt,
                      /*after_ops=*/1000}});
  fault::reset_thread();
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{7}); });
  EXPECT_EQ(word, 7u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kInterrupt)], 1u);
}

TEST_F(FaultInjection, ScriptTargetsSpecificBlocks) {
  // Only block 2 (the third atomic call since reset) is scripted; blocks 0,
  // 1, and 3 run clean.
  fault::set_script(
      {{fault::kAnyThread, /*block=*/2, 0, AbortCode::kSaveRestore, 0}});
  fault::reset_thread();
  uint64_t word = 0;
  for (int i = 0; i < 4; ++i) {
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
  }
  EXPECT_EQ(word, 4u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kSaveRestore)], 1u);
  EXPECT_EQ(s.commits, 4u);
}

TEST_F(FaultInjection, ConsecutiveScriptedFaultsEscalateToTle) {
  // Every speculative attempt of block 0 dies; the tle_after_aborts
  // backstop must escalate the block to the lock, where injection never
  // reaches, so it completes.
  std::vector<fault::ScriptedAbort> script;
  for (uint32_t att = 0; att < 16; ++att) {
    script.push_back(
        {fault::kAnyThread, 0, att, AbortCode::kInterrupt, 0});
  }
  fault::set_script(std::move(script));
  config().tle_after_aborts = 3;
  fault::reset_thread();
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{9}); });
  EXPECT_EQ(word, 9u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 3u);  // attempts 0..2, then the lock
  EXPECT_EQ(s.tle_entries, 1u);
  EXPECT_GE(s.lock_fallbacks, 1u);
  EXPECT_EQ(s.commits, 1u);
}

TEST_F(FaultInjection, RateStreamsAreDeterministicPerSeed) {
  config().fault.rate = 0.5;
  config().fault.seed = 0x1234;
  config().tle_after_aborts = 4;
  auto run = [&]() -> uint64_t {
    reset_stats();
    fault::reset_thread();
    uint64_t word = 0;
    for (int i = 0; i < 200; ++i) {
      atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
    }
    EXPECT_EQ(word, 200u);
    return aggregate_stats().faults_injected;
  };
  const uint64_t first = run();
  EXPECT_GT(first, 0u);
  EXPECT_EQ(run(), first) << "same seed, same thread, different faults";
  config().fault.seed = 0x9999;
  const uint64_t other = run();
  // A different seed reshuffles the stream; with 200 blocks at rate 0.5 an
  // identical fault count is possible but the workload must still finish.
  EXPECT_GT(other, 0u);
}

TEST_F(FaultInjection, TryOnceSurfacesInjectedCause) {
  fault::set_script({{fault::kAnyThread, 0, 0, AbortCode::kInterrupt, 0}});
  fault::reset_thread();
  uint64_t word = 0;
  const TryResult r =
      try_once([&](Txn& txn) { txn.store(&word, uint64_t{1}); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kInterrupt);
  EXPECT_EQ(word, 0u);
  EXPECT_EQ(aggregate_stats().faults_injected, 1u);
}

TEST_F(FaultInjection, SpuriousCodesAreClassified) {
  EXPECT_TRUE(is_spurious(AbortCode::kInterrupt));
  EXPECT_TRUE(is_spurious(AbortCode::kTlbMiss));
  EXPECT_TRUE(is_spurious(AbortCode::kSaveRestore));
  EXPECT_FALSE(is_spurious(AbortCode::kConflict));
  EXPECT_FALSE(is_spurious(AbortCode::kOverflow));
  EXPECT_FALSE(is_spurious(AbortCode::kExplicit));
  EXPECT_FALSE(is_spurious(AbortCode::kIllegalAccess));
}

}  // namespace
}  // namespace dc::htm
