// Clock-correctness battery for the pluggable global-clock policies
// (Config::clock_policy, htm/clock.hpp). The properties pinned here are the
// three rules of the GV5 safety contract:
//  * a transaction never returns from a load of a location whose version
//    exceeds its (possibly re-sampled) snapshot — the absorb path extends
//    the snapshot, it never widens the validation window;
//  * read-only and silent-write commits perform zero shared-clock writes
//    under both policies (asserted through TxnStats::clock_bumps and the
//    clock value itself);
//  * per-orec versions are strictly monotone across visible writes, even
//    when the policy is switched between runs.
// Plus the cost model the policies exist for: GV1 pays one fetch_add per
// visible writing commit, GV5 pays none.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "htm/clock.hpp"
#include "htm/htm.hpp"

namespace dc::htm {
namespace {

TEST(ClockPolicyNames, ParseAndFormatRoundTrip) {
  EXPECT_STREQ(to_string(ClockPolicy::kGv1), "gv1");
  EXPECT_STREQ(to_string(ClockPolicy::kGv5), "gv5");
  ClockPolicy p = ClockPolicy::kGv1;
  EXPECT_TRUE(parse_clock_policy("gv5", p));
  EXPECT_EQ(p, ClockPolicy::kGv5);
  EXPECT_TRUE(parse_clock_policy("gv1", p));
  EXPECT_EQ(p, ClockPolicy::kGv1);
  EXPECT_FALSE(parse_clock_policy("gv2", p));
  EXPECT_FALSE(parse_clock_policy("", p));
  EXPECT_FALSE(parse_clock_policy(nullptr, p));
  EXPECT_EQ(p, ClockPolicy::kGv1);  // unchanged on failed parse
}

TEST(WriterStamp, ExceedsEveryInputEitherPolicy) {
  // Rule 1's floor: the stamp must exceed the highest version it replaces,
  // whatever the relative order of clock, snapshot, and prev_max.
  const uint64_t gv = global_clock().load(std::memory_order_acquire);
  const ClockStamp sloppy = writer_stamp(ClockPolicy::kGv5, gv, gv + 100, 3);
  EXPECT_GT(sloppy.wv, gv + 100);
  EXPECT_FALSE(sloppy.read_set_unchanged);
  const ClockStamp bumped = writer_stamp(ClockPolicy::kGv1, gv, gv + 200, 1);
  EXPECT_GT(bumped.wv, gv + 200);
  // A stale prev_max above the snapshot disproves "nothing committed since".
  EXPECT_FALSE(bumped.read_set_unchanged);
}

TEST(ClockPolicyGv5, ResampleAbsorbsSloppyVersionAheadOfClock) {
  // Deterministic single-thread reproduction of the absorb path: a sloppy
  // stamp leaves an orec version the shared clock has not covered; a reader
  // that trips over it must re-sample and succeed instead of aborting. The
  // store lands after the transaction begins: the signature backend absorbs
  // the newest ring stamp at begin (DESIGN.md §11), so a stamp published
  // before begin is already inside the snapshot and would never need the
  // mid-transaction absorb this test pins.
  const Config saved = config();
  config().clock_policy = ClockPolicy::kGv5;
  reset_stats();
  uint64_t w = 0;
  {
    Txn txn;
    nontxn_store(&w, uint64_t{41});
    const uint64_t gv_before = global_clock().load(std::memory_order_acquire);
    const uint64_t stamped =
        orec_version(orec_for(&w).value.load(std::memory_order_acquire));
    ASSERT_GT(stamped, gv_before);  // the premise: version ahead of the clock
    EXPECT_LT(txn.read_version(), stamped);
    EXPECT_EQ(txn.load(&w), 41u);  // absorbed, not aborted
    // No-stale-read rule: a returned load is covered by the snapshot.
    EXPECT_GE(txn.read_version(), stamped);
    txn.commit();
    // Rule 2: the clock was raised to the observed stamp before adoption.
    EXPECT_GE(global_clock().load(std::memory_order_acquire), stamped);
  }
  const TxnStats s = aggregate_stats();
  EXPECT_GE(s.clock_resamples, 1u);
  EXPECT_GE(s.clock_catchups, 1u);
  config() = saved;
}

class ClockPolicyTest : public ::testing::TestWithParam<ClockPolicy> {
 protected:
  void SetUp() override {
    saved_ = config();
    config().clock_policy = GetParam();
    reset_stats();
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_P(ClockPolicyTest, ReadOnlyAndSilentCommitsNeverWriteSharedClock) {
  uint64_t w = 7;
  atomic([&](Txn& t) { t.store(&w, uint64_t{8}); });  // a settled version
  atomic([&](Txn& t) { (void)t.load(&w); });  // absorb any sloppy stamp
  const uint64_t gv_before = global_clock().load(std::memory_order_acquire);
  const uint64_t bumps_before = aggregate_stats().clock_bumps;
  atomic([&](Txn& t) { (void)t.load(&w); });         // read-only
  atomic([&](Txn& t) { t.store(&w, t.load(&w)); });  // silent write
  EXPECT_EQ(aggregate_stats().clock_bumps, bumps_before);
  EXPECT_EQ(global_clock().load(std::memory_order_acquire), gv_before);
  EXPECT_EQ(aggregate_stats().commits, 4u);
}

TEST_P(ClockPolicyTest, WriterCommitClockCostMatchesPolicy) {
  // The cost model behind the policies: GV1 pays exactly one shared-clock
  // fetch_add per visible writing commit, GV5 pays exactly zero (its
  // stamps are thread-local arithmetic).
  constexpr uint64_t kWrites = 10;
  uint64_t w = 0;
  for (uint64_t i = 0; i < kWrites; ++i) {
    atomic([&](Txn& t) { t.store(&w, t.load(&w) + 1); });
  }
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.writer_commits, kWrites);
  if (GetParam() == ClockPolicy::kGv1) {
    EXPECT_EQ(s.clock_bumps, kWrites);
    EXPECT_EQ(s.sloppy_stamps, 0u);
  } else {
    EXPECT_EQ(s.clock_bumps, 0u);
    EXPECT_EQ(s.sloppy_stamps, kWrites);
  }
}

TEST_P(ClockPolicyTest, OrecVersionsMonotoneIncludingPolicySwitch) {
  uint64_t w = 0;
  const Orec& o = orec_for(&w);
  uint64_t last = orec_version(o.value.load(std::memory_order_acquire));
  for (int i = 1; i <= 8; ++i) {
    atomic([&](Txn& t) { t.store(&w, uint64_t(i)); });
    const uint64_t v = orec_version(o.value.load(std::memory_order_acquire));
    EXPECT_GT(v, last);
    last = v;
  }
  // Switching policies between runs must not step versions backwards: the
  // stamp floor (clock.hpp rule 1) covers sloppy residue under GV1 and the
  // clock sample under GV5.
  config().clock_policy = GetParam() == ClockPolicy::kGv1 ? ClockPolicy::kGv5
                                                          : ClockPolicy::kGv1;
  atomic([&](Txn& t) { t.store(&w, uint64_t{99}); });
  EXPECT_GT(orec_version(o.value.load(std::memory_order_acquire)), last);
}

TEST_P(ClockPolicyTest, StrongAtomicityCasDoomsInFlightReader) {
  // The TLE lock is taken with nontxn_cas; under GV5 its sloppy stamp must
  // still doom a transaction that read the word, or lock-mode exclusivity
  // (and strong atomicity generally) breaks.
  uint64_t w = 1, z = 0;
  bool aborted = false;
  try {
    Txn txn;
    EXPECT_EQ(txn.load(&w), 1u);
    ASSERT_TRUE(nontxn_cas(&w, uint64_t{1}, uint64_t{2}));
    txn.store(&z, uint64_t{1});
    txn.commit();
  } catch (const TxnAbort& e) {
    aborted = true;
    EXPECT_EQ(e.code, AbortCode::kConflict);
  }
  EXPECT_TRUE(aborted);
  EXPECT_EQ(z, 0u);  // the buffered store was discarded
}

TEST_P(ClockPolicyTest, InvariantPreservedUnderConcurrentWriters) {
  // Serializability stress with exact final counts: every committed
  // increment of x is matched by one of y, and no validated load pair ever
  // observes x != y — under GV5 that means the absorb path never admits a
  // half-committed writer.
  constexpr int kThreads = 4;
  constexpr int kOps = 1200;
  uint64_t x = 0, y = 0;
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        atomic([&](Txn& txn) {
          const uint64_t vx = txn.load(&x);
          const uint64_t vy = txn.load(&y);
          if (vx != vy) mismatches.fetch_add(1, std::memory_order_relaxed);
          txn.store(&x, vx + 1);
          txn.store(&y, vy + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(x, uint64_t{kThreads} * kOps);
  EXPECT_EQ(y, uint64_t{kThreads} * kOps);
  if (GetParam() == ClockPolicy::kGv5) {
    EXPECT_EQ(aggregate_stats().clock_bumps, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, ClockPolicyTest,
    ::testing::Values(ClockPolicy::kGv1, ClockPolicy::kGv5),
    [](const ::testing::TestParamInfo<ClockPolicy>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace dc::htm
