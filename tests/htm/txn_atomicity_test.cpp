// Multi-threaded atomicity, isolation, and opacity of the substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "util/barrier.hpp"

namespace dc::htm {
namespace {

class TxnAtomicity : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = config(); }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(TxnAtomicity, ConcurrentIncrementsAreNotLost) {
  constexpr int kThreads = 4;
  constexpr int kIncrements = 5000;
  uint64_t counter = 0;
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kIncrements; ++i) {
        atomic([&](Txn& txn) {
          txn.store(&counter, txn.load(&counter) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, uint64_t{kThreads} * kIncrements);
}

TEST_F(TxnAtomicity, TransfersConserveTotal) {
  // Classic bank-account invariant: concurrent transfers between accounts
  // never create or destroy money, and no reader ever sees a partial
  // transfer.
  constexpr int kAccounts = 16;
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  constexpr uint64_t kInitial = 1000;
  std::vector<uint64_t> accounts(kAccounts, kInitial);
  std::atomic<bool> failed{false};
  util::SpinBarrier barrier(kThreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.arrive_and_wait();
      uint64_t seed = static_cast<uint64_t>(t) * 977 + 13;
      for (int i = 0; i < kOps; ++i) {
        seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
        const int from = static_cast<int>((seed >> 33) % kAccounts);
        const int to = static_cast<int>((seed >> 13) % kAccounts);
        atomic([&](Txn& txn) {
          const uint64_t f = txn.load(&accounts[from]);
          if (f == 0) return;
          txn.store(&accounts[from], f - 1);
          txn.store(&accounts[to], txn.load(&accounts[to]) + 1);
        });
      }
    });
  }
  // Reader thread: sums all accounts transactionally; the total must always
  // be exact (isolation: no partial transfer visible).
  std::thread reader([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < 500; ++i) {
      uint64_t total = 0;
      atomic([&](Txn& txn) {
        total = 0;
        for (const auto& a : accounts) total += txn.load(&a);
      });
      if (total != uint64_t{kAccounts} * kInitial) failed.store(true);
    }
  });
  for (auto& t : threads) t.join();
  reader.join();
  EXPECT_FALSE(failed.load());
  uint64_t total = 0;
  for (const uint64_t a : accounts) total += a;
  EXPECT_EQ(total, uint64_t{kAccounts} * kInitial);
}

TEST_F(TxnAtomicity, OpacityNoTornPairs) {
  // Writer keeps x == y at all times (transactionally). A reader that ever
  // observes x != y inside a transaction has acted on an inconsistent
  // snapshot — an opacity violation (and the hole in "sandboxing").
  uint64_t x = 0, y = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      atomic([&](Txn& txn) {
        txn.store(&x, v);
        txn.store(&y, v);
      });
    }
  });
  std::thread checker([&] {
    for (int i = 0; i < 20000; ++i) {
      atomic([&](Txn& txn) {
        const uint64_t a = txn.load(&x);
        const uint64_t b = txn.load(&y);
        if (a != b) torn.store(true);
      });
    }
    stop.store(true);
  });
  writer.join();
  checker.join();
  EXPECT_FALSE(torn.load());
}

TEST_F(TxnAtomicity, ConflictingWritersBothEventuallyCommit) {
  config().tle_after_aborts = 0;  // progress must come from retry alone
  uint64_t shared = 0;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  util::SpinBarrier barrier(2);
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kPerThread; ++i) {
        atomic([&](Txn& txn) {
          txn.store(&shared, txn.load(&shared) + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared, 2u * kPerThread);
}

TEST_F(TxnAtomicity, DisjointWritesDoNotConflict) {
  // Writers to different words should commit without aborting (no false
  // sharing at word granularity; orec collisions are statistically nil for
  // two addresses).
  reset_stats();
  alignas(64) uint64_t a = 0;
  alignas(64) uint64_t b = 0;
  std::thread t1([&] {
    for (int i = 0; i < 5000; ++i) {
      atomic([&](Txn& txn) { txn.store(&a, txn.load(&a) + 1); });
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 5000; ++i) {
      atomic([&](Txn& txn) { txn.store(&b, txn.load(&b) + 1); });
    }
  });
  t1.join();
  t2.join();
  EXPECT_EQ(a, 5000u);
  EXPECT_EQ(b, 5000u);
  const TxnStats s = aggregate_stats();
  // Allow a little noise from unlucky scheduling, but disjoint writers must
  // be essentially conflict-free.
  EXPECT_LT(s.abort_rate(), 0.01);
}

TEST_F(TxnAtomicity, ExtensionAllowsLongReadersUnderWrites) {
  // A long read-only scan concurrent with writers to *other* words should
  // commit (timestamp extension revalidates instead of aborting on every
  // clock advance).
  config().enable_extension = true;
  std::vector<uint64_t> scanned(256, 1);
  uint64_t unrelated = 0;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      atomic([&](Txn& txn) { txn.store(&unrelated, txn.load(&unrelated) + 1); });
    }
  });
  for (int i = 0; i < 200; ++i) {
    uint64_t sum = 0;
    atomic([&](Txn& txn) {
      sum = 0;
      for (const auto& w : scanned) sum += txn.load(&w);
    });
    EXPECT_EQ(sum, 256u);
  }
  stop.store(true);
  writer.join();
}

}  // namespace
}  // namespace dc::htm
