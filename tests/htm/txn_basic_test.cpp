// Single-threaded semantics of the transaction API.
#include <gtest/gtest.h>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class TxnBasic : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = config(); }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(TxnBasic, CommitPublishesStores) {
  uint64_t x = 0;
  atomic([&](Txn& txn) { txn.store(&x, uint64_t{42}); });
  EXPECT_EQ(x, 42u);
}

TEST_F(TxnBasic, LoadReadsCommittedValue) {
  uint64_t x = 7;
  uint64_t seen = 0;
  atomic([&](Txn& txn) { seen = txn.load(&x); });
  EXPECT_EQ(seen, 7u);
}

TEST_F(TxnBasic, ReadOwnWrites) {
  uint64_t x = 1;
  uint64_t seen = 0;
  atomic([&](Txn& txn) {
    txn.store(&x, uint64_t{2});
    seen = txn.load(&x);
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(x, 2u);
}

TEST_F(TxnBasic, LastStoreWins) {
  uint64_t x = 0;
  atomic([&](Txn& txn) {
    txn.store(&x, uint64_t{1});
    txn.store(&x, uint64_t{2});
    txn.store(&x, uint64_t{3});
  });
  EXPECT_EQ(x, 3u);
}

TEST_F(TxnBasic, ReturnsBodyResult) {
  uint64_t x = 5;
  const uint64_t r = atomic([&](Txn& txn) { return txn.load(&x) * 2; });
  EXPECT_EQ(r, 10u);
}

TEST_F(TxnBasic, MixedSizes) {
  uint8_t a = 0;
  uint16_t b = 0;
  uint32_t c = 0;
  uint64_t d = 0;
  atomic([&](Txn& txn) {
    txn.store(&a, uint8_t{1});
    txn.store(&b, uint16_t{2});
    txn.store(&c, uint32_t{3});
    txn.store(&d, uint64_t{4});
  });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
  EXPECT_EQ(c, 3u);
  EXPECT_EQ(d, 4u);
}

TEST_F(TxnBasic, PointerValues) {
  int target = 9;
  int* p = nullptr;
  atomic([&](Txn& txn) { txn.store(&p, &target); });
  int* seen = nullptr;
  atomic([&](Txn& txn) { seen = txn.load(&p); });
  EXPECT_EQ(seen, &target);
  EXPECT_EQ(*seen, 9);
}

TEST_F(TxnBasic, ExplicitAbortIsRetried) {
  config().tle_after_aborts = 0;  // no lock fallback
  uint64_t x = 0;
  int attempts = 0;
  atomic([&](Txn& txn) {
    if (++attempts < 3) txn.abort(AbortCode::kExplicit);
    txn.store(&x, uint64_t{1});
  });
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(x, 1u);
}

TEST_F(TxnBasic, AbortedStoresAreNotPublished) {
  config().tle_after_aborts = 0;
  uint64_t x = 0;
  bool first = true;
  atomic([&](Txn& txn) {
    if (first) {
      txn.store(&x, uint64_t{99});
      first = false;
      txn.abort(AbortCode::kExplicit);
    }
    // Retry writes nothing; x must never have seen 99.
    EXPECT_EQ(txn.load(&x), 0u);
  });
  EXPECT_EQ(x, 0u);
}

TEST_F(TxnBasic, UserExceptionPropagatesAndDiscardsEffects) {
  uint64_t x = 0;
  struct Boom {};
  EXPECT_THROW(atomic([&](Txn& txn) {
                 txn.store(&x, uint64_t{5});
                 throw Boom{};
               }),
               Boom);
  EXPECT_EQ(x, 0u);
}

TEST_F(TxnBasic, InTransactionFlag) {
  EXPECT_FALSE(in_transaction());
  atomic([&](Txn&) { EXPECT_TRUE(in_transaction()); });
  EXPECT_FALSE(in_transaction());
}

TEST_F(TxnBasic, ReadOnlyTxnCommits) {
  uint64_t x = 3;
  uint64_t y = 4;
  uint64_t sum = 0;
  atomic([&](Txn& txn) { sum = txn.load(&x) + txn.load(&y); });
  EXPECT_EQ(sum, 7u);
}

TEST_F(TxnBasic, StoreBudgetVisible) {
  config().store_buffer_capacity = 32;
  // Outside the lambda: buffered stores write back at commit, after the
  // lambda's frame is gone, so the target must outlive the transaction.
  uint64_t local = 0;
  atomic([&](Txn& txn) {
    EXPECT_EQ(txn.store_budget_left(), 32u);
    txn.store(&local, uint64_t{1});
    EXPECT_EQ(txn.store_budget_left(), 31u);
    txn.charge_store(4);
    EXPECT_EQ(txn.store_budget_left(), 27u);
  });
}

TEST_F(TxnBasic, BoolValues) {
  bool flag = false;
  atomic([&](Txn& txn) { txn.store(&flag, true); });
  bool seen = false;
  atomic([&](Txn& txn) { seen = txn.load(&flag); });
  EXPECT_TRUE(seen);
}

}  // namespace
}  // namespace dc::htm
