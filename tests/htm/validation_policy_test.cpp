// Behavior battery for the pluggable conflict-validation backends
// (Config::validation, htm/sigset.hpp, htm/valring.hpp), run under both
// clock policies — the signature ring stamps entries with whatever the
// active policy produced, so every property must hold for GV1's dense
// stamps and GV5's sloppy ones alike. Pinned here:
//  * the signature backend preserves the substrate's serializability
//    contract (strong-atomicity dooming, the x == y stress invariant);
//  * ring wrap degrades to the exact walk (counted, never wrong);
//  * a Bloom-collision abort is classified as a false positive, counted,
//    and resolved by the normal retry — it can cost progress, not
//    correctness;
//  * the exact backend leaves every piece of signature machinery cold
//    (the zero-overhead contract the schema validator enforces end to end).
#include <gtest/gtest.h>

#include <atomic>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "htm/htm.hpp"
#include "htm/valring.hpp"

namespace dc::htm {
namespace {

TEST(ValidationPolicyNames, ParseAndFormatRoundTrip) {
  EXPECT_STREQ(to_string(ValidationPolicy::kExact), "exact");
  EXPECT_STREQ(to_string(ValidationPolicy::kSignature), "sig");
  ValidationPolicy p = ValidationPolicy::kExact;
  EXPECT_TRUE(parse_validation_policy("sig", p));
  EXPECT_EQ(p, ValidationPolicy::kSignature);
  EXPECT_TRUE(parse_validation_policy("exact", p));
  EXPECT_EQ(p, ValidationPolicy::kExact);
  p = ValidationPolicy::kSignature;
  EXPECT_FALSE(parse_validation_policy("bloom", p));
  EXPECT_FALSE(parse_validation_policy("", p));
  EXPECT_FALSE(parse_validation_policy(nullptr, p));
  EXPECT_EQ(p, ValidationPolicy::kSignature);  // unchanged on failed parse
}

// Scratch words the collision/disjointness searches below index into.
// Static so orec mapping is stable within a run.
uint64_t g_scratch[16384];

uint64_t orec_idx_of(const void* addr) {
  return static_cast<uint64_t>(&orec_for(addr) - orec_table());
}

// A scratch word on a different orec than `anchor` whose singleton Bloom
// signature is disjoint from the anchor's, so a write to it can never be
// mistaken for a conflict with a reader of `anchor`.
uint64_t* scratch_partner(const void* anchor) {
  const uint64_t ia = orec_idx_of(anchor);
  SigSet sa;
  sa.add(ia);
  for (uint64_t& w : g_scratch) {
    const uint64_t ib = orec_idx_of(&w);
    if (ib == ia) continue;
    SigSet sb;
    sb.add(ib);
    if (!sa.intersects(sb)) return &w;
  }
  return nullptr;
}

class SigValidationTest : public ::testing::TestWithParam<ClockPolicy> {
 protected:
  void SetUp() override {
    saved_ = config();
    config().clock_policy = GetParam();
    config().validation = ValidationPolicy::kSignature;
    reset_stats();
    sigring::reset();
  }
  void TearDown() override {
    config() = saved_;
    sigring::reset();
  }
  Config saved_;
};

TEST_P(SigValidationTest, ReadWriteCommitsValidateAndPublish) {
  uint64_t w = 0;
  const uint64_t published_before = sigring::published_count();
  for (uint64_t i = 0; i < 8; ++i) {
    atomic([&](Txn& t) { t.store(&w, t.load(&w) + 1); });
  }
  EXPECT_EQ(w, 8u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 8u);
  // Every visible writing commit published exactly one ring entry.
  EXPECT_EQ(sigring::published_count(), published_before + 8);
  EXPECT_EQ(s.sig_false_aborts + s.sig_ring_overflows, 0u);
}

TEST_P(SigValidationTest, ReadOnlyAndSilentCommitsPublishNothing) {
  uint64_t w = 7;
  atomic([&](Txn& t) { t.store(&w, uint64_t{8}); });  // a settled version
  atomic([&](Txn& t) { (void)t.load(&w); });  // absorb any sloppy stamp
  const uint64_t published_before = sigring::published_count();
  atomic([&](Txn& t) { (void)t.load(&w); });         // read-only
  atomic([&](Txn& t) { t.store(&w, t.load(&w)); });  // silent write
  EXPECT_EQ(sigring::published_count(), published_before);
}

TEST_P(SigValidationTest, StrongAtomicityCasDoomsInFlightReader) {
  // Mirror of the clock-policy test of the same name: the signature scan
  // must doom a reader whose word was CASed from outside, through the
  // in-flight table or the ring entry the CAS published.
  uint64_t w = 1, z = 0;
  bool aborted = false;
  try {
    Txn txn;
    EXPECT_EQ(txn.load(&w), 1u);
    ASSERT_TRUE(nontxn_cas(&w, uint64_t{1}, uint64_t{2}));
    txn.store(&z, uint64_t{1});
    txn.commit();
  } catch (const TxnAbort& e) {
    aborted = true;
    EXPECT_EQ(e.code, AbortCode::kConflict);
  }
  EXPECT_TRUE(aborted);
  EXPECT_EQ(z, 0u);  // the buffered store was discarded
}

TEST_P(SigValidationTest, RingWrapFallsBackToExactWalkAndCommits) {
  uint64_t reader_word = 0;
  uint64_t* churn = scratch_partner(&reader_word);
  ASSERT_NE(churn, nullptr);
  int attempts = 0;
  atomic([&](Txn& t) {
    ++attempts;
    const uint64_t v = t.load(&reader_word);
    if (attempts == 1) {
      // Wrap the whole ring after this transaction took its snapshot: the
      // eviction watermark rises past rv, so the commit-time scan cannot
      // decide — even though the churn word's signature is disjoint from
      // the read signature.
      for (uint64_t i = 0; i < sigring::kRingSize + 8; ++i) {
        nontxn_store(churn, i);
      }
    }
    t.store(&reader_word, v + 1);
  });
  EXPECT_EQ(reader_word, 1u);
  const TxnStats s = aggregate_stats();
  EXPECT_GE(s.sig_ring_overflows, 1u);
  EXPECT_GE(s.sig_validations, 1u);
  // The fallback exact walk found the read set intact: first attempt
  // commits, no false abort charged.
  EXPECT_EQ(attempts, 1);
  EXPECT_EQ(s.sig_false_aborts, 0u);
}

TEST_P(SigValidationTest, BloomCollisionAbortsAreClassifiedAndRetried) {
  // Build a wide read signature (the first half of the scratch array), then
  // commit a strong-atomicity store to a word the reader never touched but
  // whose precise ring entry still collides — both of its hash bits are
  // already set in the read signature. The scan must report conflict (Bloom
  // cannot prove innocence), the exact walk must classify it as a false
  // positive, and the retry — whose fresh snapshot covers the colliding
  // stamp — must sail through.
  constexpr uint64_t kReads = 8192;
  std::vector<bool> read_orec(kOrecCount, false);
  SigSet expected_read_sig;
  for (uint64_t i = 0; i < kReads; ++i) {
    const uint64_t idx = orec_idx_of(&g_scratch[i]);
    read_orec[idx] = true;
    expected_read_sig.add(idx);
  }
  uint64_t* collider = nullptr;
  for (uint64_t i = kReads; i < std::size(g_scratch); ++i) {
    const uint64_t idx = orec_idx_of(&g_scratch[i]);
    if (!read_orec[idx] && expected_read_sig.maybe_contains(idx)) {
      collider = &g_scratch[i];
      break;
    }
  }
  // At ~22% filter fill, maybe_contains ≈ 0.05 per candidate over 8k words,
  // so a collider exists with overwhelming probability.
  ASSERT_NE(collider, nullptr);
  *collider = 0;
  static uint64_t sink;
  int attempts = 0;
  atomic([&](Txn& t) {
    ++attempts;
    uint64_t sum = 0;
    for (uint64_t i = 0; i < kReads; ++i) sum += t.load(&g_scratch[i]);
    if (attempts == 1) nontxn_store(collider, uint64_t{1});
    t.store(&sink, sum);
  });
  EXPECT_EQ(*collider, 1u);
  EXPECT_EQ(attempts, 2);
  const TxnStats s = aggregate_stats();
  EXPECT_GE(s.sig_false_aborts, 1u);
  EXPECT_GE(s.aborts, 1u);
}

TEST_P(SigValidationTest, ExactModeLeavesSignatureMachineryCold) {
  config().validation = ValidationPolicy::kExact;
  const uint64_t published_before = sigring::published_count();
  uint64_t w = 0;
  for (uint64_t i = 0; i < 4; ++i) {
    atomic([&](Txn& t) { t.store(&w, t.load(&w) + 1); });
  }
  nontxn_store(&w, uint64_t{99});
  (void)nontxn_cas(&w, uint64_t{99}, uint64_t{100});
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.sig_validations, 0u);
  EXPECT_EQ(s.sig_false_aborts, 0u);
  EXPECT_EQ(s.sig_ring_overflows, 0u);
  EXPECT_EQ(sigring::published_count(), published_before);
}

TEST_P(SigValidationTest, InvariantPreservedUnderConcurrentWriters) {
  // The clock battery's serializability stress, rerun with signature
  // validation doing the admitting: no validated load pair may ever see
  // x != y, and every increment lands exactly once.
  constexpr int kThreads = 4;
  constexpr int kOps = 1200;
  uint64_t x = 0, y = 0;
  uint64_t churn[kThreads] = {};
  std::atomic<uint64_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOps; ++i) {
        atomic([&](Txn& txn) {
          const uint64_t vx = txn.load(&x);
          const uint64_t vy = txn.load(&y);
          if (vx != vy) mismatches.fetch_add(1, std::memory_order_relaxed);
          if (i % 64 == 0) {
            // Advance the clock mid-transaction so this commit cannot take
            // the wv == rv + 1 validation skip: with the begin-time absorb
            // of the ring's newest stamp, an uncontended GV1 run would
            // otherwise never reach the scan at all.
            nontxn_store(&churn[t], static_cast<uint64_t>(i) + 1);
          }
          txn.store(&x, vx + 1);
          txn.store(&y, vy + 1);
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(x, uint64_t{kThreads} * kOps);
  EXPECT_EQ(y, uint64_t{kThreads} * kOps);
  EXPECT_GT(aggregate_stats().sig_validations, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    BothClocks, SigValidationTest,
    ::testing::Values(ClockPolicy::kGv1, ClockPolicy::kGv5),
    [](const ::testing::TestParamInfo<ClockPolicy>& info) {
      return std::string(to_string(info.param));
    });

}  // namespace
}  // namespace dc::htm
