// htm::SerialSection — the exclusive, non-speculative escape hatch.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "htm/htm.hpp"
#include "util/barrier.hpp"

namespace dc::htm {
namespace {

class SerialSectionTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = config(); }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(SerialSectionTest, ExcludesTransactionCommits) {
  // While the section is held, a transaction cannot commit a write; the
  // section's plain reads therefore see a frozen snapshot.
  uint64_t x = 0;
  std::atomic<bool> in_section{false};
  std::atomic<bool> released{false};
  std::atomic<uint64_t> observed_during{~0ull};
  std::thread writer([&] {
    while (!in_section.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    // This atomic block must not complete until the section is gone.
    atomic([&](Txn& txn) { txn.store(&x, uint64_t{42}); });
    EXPECT_TRUE(released.load(std::memory_order_acquire))
        << "transaction committed inside a SerialSection";
  });
  {
    SerialSection section;
    in_section.store(true, std::memory_order_release);
    // Give the writer ample chance to (incorrectly) slip through.
    for (int i = 0; i < 1000; ++i) std::this_thread::yield();
    observed_during.store(nontxn_load(&x), std::memory_order_relaxed);
    released.store(true, std::memory_order_release);
  }
  writer.join();
  EXPECT_EQ(observed_during.load(), 0u);  // frozen snapshot
  EXPECT_EQ(x, 42u);                      // writer completed afterwards
}

TEST_F(SerialSectionTest, InFlightTransactionsAreDoomed) {
  // A transaction that read data before the section begins must not commit
  // with that stale snapshot after the section mutates it.
  config().tle_after_aborts = 0;  // no lock fallback: surface the abort
  uint64_t x = 0;
  util::SpinBarrier barrier(2);
  std::atomic<bool> mutated{false};
  std::thread reader([&] {
    const TryResult r = try_once([&](Txn& txn) {
      (void)txn.load(&x);
      barrier.arrive_and_wait();  // section starts and mutates x here
      while (!mutated.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      (void)txn.load(&x);  // must observe the conflict
    });
    EXPECT_FALSE(r.committed);
  });
  barrier.arrive_and_wait();
  {
    SerialSection section;
    // Plain write under exclusivity; bump visibility via nontxn path.
    nontxn_store(&x, uint64_t{7});
    mutated.store(true, std::memory_order_release);
  }
  reader.join();
  EXPECT_EQ(x, 7u);
}

TEST_F(SerialSectionTest, SectionsSerializeWithEachOther) {
  uint64_t counter = 0;
  constexpr int kThreads = 4;
  constexpr int kOps = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOps; ++i) {
        SerialSection section;
        counter = counter + 1;  // plain RMW, safe only if exclusive
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, uint64_t{kThreads} * kOps);
}

TEST_F(SerialSectionTest, MixedSectionsAndTransactionsConserveCounter) {
  uint64_t counter = 0;
  std::thread txn_thread([&] {
    for (int i = 0; i < 2000; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  std::thread serial_thread([&] {
    for (int i = 0; i < 2000; ++i) {
      SerialSection section;
      nontxn_store(&counter, nontxn_load(&counter) + 1);
    }
  });
  txn_thread.join();
  serial_thread.join();
  EXPECT_EQ(counter, 4000u);
}

}  // namespace
}  // namespace dc::htm
