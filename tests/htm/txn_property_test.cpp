// Property-style sweeps over substrate configurations: the atomicity
// invariants must hold for every (threads, store-buffer, extension, TLE,
// yield) combination, not just the defaults.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>
#include <vector>

#include "htm/htm.hpp"
#include "util/barrier.hpp"

#if defined(DC_SCHED)
#include <functional>

#include "sched/sched.hpp"
#include "tests/support/sched_harness.hpp"
#endif

namespace dc::htm {
namespace {

struct SubstrateParams {
  uint32_t threads;
  uint32_t store_buffer;
  bool extension;
  uint32_t tle_after;
  uint32_t yield_every;
};

class TxnProperty : public ::testing::TestWithParam<SubstrateParams> {
 protected:
  void SetUp() override {
    saved_ = config();
    const auto& p = GetParam();
    config().store_buffer_capacity = p.store_buffer;
    config().enable_extension = p.extension;
    config().tle_after_aborts = p.tle_after;
    config().txn_yield_every_loads = p.yield_every;
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_P(TxnProperty, CounterConservation) {
  const auto& p = GetParam();
  uint64_t counter = 0;
  constexpr int kOps = 1500;
  util::SpinBarrier barrier(p.threads);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < p.threads; ++t) {
    team.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
      }
    });
  }
  for (auto& t : team) t.join();
  EXPECT_EQ(counter, uint64_t{p.threads} * kOps);
}

TEST_P(TxnProperty, MultiWordInvariant) {
  // words[] must always sum to a multiple of the word count: each txn adds
  // 1 to every word. A torn commit or lost update breaks the invariant.
  const auto& p = GetParam();
  // Keep writes within the smallest configured store buffer.
  const std::size_t kWords = 4;
  std::vector<uint64_t> words(kWords, 0);
  std::atomic<bool> bad{false};
  constexpr int kOps = 800;
  util::SpinBarrier barrier(p.threads);
  std::vector<std::thread> team;
  for (uint32_t t = 0; t < p.threads; ++t) {
    team.emplace_back([&] {
      barrier.arrive_and_wait();
      for (int i = 0; i < kOps; ++i) {
        atomic([&](Txn& txn) {
          for (auto& w : words) txn.store(&w, txn.load(&w) + 1);
        });
        uint64_t sum = 0;
        atomic([&](Txn& txn) {
          sum = 0;
          for (const auto& w : words) sum += txn.load(&w);
        });
        if (sum % kWords != 0) bad.store(true);
      }
    });
  }
  for (auto& t : team) t.join();
  EXPECT_FALSE(bad.load());
  for (const auto& w : words) EXPECT_EQ(w, words[0]);
  EXPECT_EQ(words[0], uint64_t{p.threads} * kOps);
}

#if defined(DC_SCHED)
TEST_P(TxnProperty, CounterConservationScheduled) {
  // The same conservation property, but with the interleaving chosen by
  // the deterministic scheduler instead of the host: every substrate
  // configuration must hold it on every explored schedule, and a red seed
  // here is a one-command repro instead of a flake. Fewer ops than the
  // free-running variant — each checkpoint is a scheduling decision, and
  // the adversarial schedules do the work the op count did.
  const auto& p = GetParam();
  static uint64_t counter;
  constexpr int kOps = 12;
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    counter = 0;
    std::vector<std::function<void()>> bodies;
    for (uint32_t t = 0; t < p.threads; ++t) {
      bodies.push_back([] {
        for (int i = 0; i < kOps; ++i) {
          atomic(
              [&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
        }
      });
    }
    sched::Options o;
    o.seed = seed;
    o.policy = sched::Policy::kRandomWalk;
    o.name = "property_conservation";
    schedtest::run_scheduled(std::move(o), std::move(bodies));
    EXPECT_EQ(counter, uint64_t{p.threads} * kOps) << "seed=" << seed;
  }
}
#endif  // DC_SCHED

std::string param_name(
    const ::testing::TestParamInfo<SubstrateParams>& info) {
  const auto& p = info.param;
  return "t" + std::to_string(p.threads) + "_buf" +
         std::to_string(p.store_buffer) + (p.extension ? "_ext" : "_noext") +
         "_tle" + std::to_string(p.tle_after) + "_y" +
         std::to_string(p.yield_every);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TxnProperty,
    ::testing::Values(
        SubstrateParams{1, 32, true, 64, 0},
        SubstrateParams{2, 32, true, 64, 0},
        SubstrateParams{4, 32, true, 64, 0},
        SubstrateParams{4, 32, false, 64, 0},   // no extension
        SubstrateParams{4, 32, true, 0, 0},     // no TLE
        SubstrateParams{4, 4, true, 8, 0},      // tiny buffer, early TLE
        SubstrateParams{4, 32, true, 64, 2},    // forced mid-txn yields
        SubstrateParams{2, 4, false, 4, 1},     // everything hostile
        SubstrateParams{8, 32, true, 64, 4}),
    param_name);

}  // namespace
}  // namespace dc::htm
