// Strong atomicity (paper §6): non-transactional stores must conflict with
// concurrent transactions, and non-transactional loads see committed values.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class StrongAtomicity : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = config(); }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(StrongAtomicity, NontxnStoreIsVisibleToTransactions) {
  uint64_t x = 0;
  nontxn_store(&x, uint64_t{7});
  uint64_t seen = 0;
  atomic([&](Txn& txn) { seen = txn.load(&x); });
  EXPECT_EQ(seen, 7u);
}

TEST_F(StrongAtomicity, NontxnLoadSeesCommittedValue) {
  uint64_t x = 0;
  atomic([&](Txn& txn) { txn.store(&x, uint64_t{9}); });
  EXPECT_EQ(nontxn_load(&x), 9u);
}

TEST_F(StrongAtomicity, NontxnStoreAbortsConflictingReader) {
  // A transaction that read x before a nontxn_store to x must not commit
  // with the stale value: pair (x, y) written together transactionally,
  // x also hammered non-transactionally; a reader txn that saw the old x
  // and the new y (or vice versa) would break isolation.
  uint64_t x = 0;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> observed_decreasing{0};
  std::thread writer([&] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      nontxn_store(&x, ++v);
    }
  });
  // Monotonicity check: each transactional read of x must be >= the
  // previous one (the writer only increments; a stale read would go
  // backwards).
  uint64_t prev = 0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t cur = 0;
    atomic([&](Txn& txn) { cur = txn.load(&x); });
    if (cur < prev) observed_decreasing.fetch_add(1);
    prev = cur;
  }
  stop.store(true);
  writer.join();
  EXPECT_EQ(observed_decreasing.load(), 0u);
}

TEST_F(StrongAtomicity, MixedTxnAndNontxnIncrementsAreNotLost) {
  uint64_t counter = 0;
  constexpr int kTxnOps = 3000;
  constexpr int kCasOps = 3000;
  std::thread txn_thread([&] {
    for (int i = 0; i < kTxnOps; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  std::thread cas_thread([&] {
    for (int i = 0; i < kCasOps; ++i) {
      // Strong-atomicity CAS loop, the way a non-HTM algorithm would share
      // this word with transactions.
      for (;;) {
        const uint64_t cur = nontxn_load(&counter);
        if (nontxn_cas(&counter, cur, cur + 1)) break;
      }
    }
  });
  txn_thread.join();
  cas_thread.join();
  EXPECT_EQ(counter, uint64_t{kTxnOps} + kCasOps);
}

TEST_F(StrongAtomicity, NontxnCasSemantics) {
  uint64_t x = 5;
  EXPECT_FALSE(nontxn_cas(&x, uint64_t{4}, uint64_t{6}));
  EXPECT_EQ(x, 5u);
  EXPECT_TRUE(nontxn_cas(&x, uint64_t{5}, uint64_t{6}));
  EXPECT_EQ(x, 6u);
}

TEST_F(StrongAtomicity, NontxnStoresCountedInStats) {
  reset_stats();
  uint64_t x = 0;
  nontxn_store(&x, uint64_t{1});
  nontxn_store(&x, uint64_t{2});
  EXPECT_EQ(aggregate_stats().nontxn_stores, 2u);
}

TEST_F(StrongAtomicity, PairedInvariantHoldsAgainstNontxnWrites) {
  // Writer transactionally keeps a == b. A nontxn store to an unrelated
  // word must never make a reader see a != b.
  uint64_t a = 0, b = 0, noise = 0;
  std::atomic<bool> stop{false};
  std::atomic<bool> torn{false};
  std::thread writer([&] {
    uint64_t v = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      ++v;
      atomic([&](Txn& txn) {
        txn.store(&a, v);
        txn.store(&b, v);
      });
      nontxn_store(&noise, v);
    }
  });
  for (int i = 0; i < 20000; ++i) {
    atomic([&](Txn& txn) {
      if (txn.load(&a) != txn.load(&b)) torn.store(true);
    });
  }
  stop.store(true);
  writer.join();
  EXPECT_FALSE(torn.load());
}

}  // namespace
}  // namespace dc::htm
