// Store-buffer bounding: the Rock-like overflow behaviour that caps
// telescoping step sizes at 32 (paper §3.4).
#include <gtest/gtest.h>

#include <vector>

#include "htm/htm.hpp"

namespace dc::htm {
namespace {

class TxnOverflow : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_ = config();
    config().tle_after_aborts = 0;  // overflow must surface, not elide
  }
  void TearDown() override { config() = saved_; }
  Config saved_;
};

TEST_F(TxnOverflow, StoresUpToCapacitySucceed) {
  config().store_buffer_capacity = 8;
  std::vector<uint64_t> words(8, 0);
  const TryResult r = try_once([&](Txn& txn) {
    for (int i = 0; i < 8; ++i) txn.store(&words[i], uint64_t(i + 1));
  });
  EXPECT_TRUE(r.committed);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(words[i], uint64_t(i + 1));
}

TEST_F(TxnOverflow, OneStoreTooManyAborts) {
  config().store_buffer_capacity = 8;
  std::vector<uint64_t> words(9, 0);
  const TryResult r = try_once([&](Txn& txn) {
    for (int i = 0; i < 9; ++i) txn.store(&words[i], uint64_t{1});
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kOverflow);
  for (const uint64_t w : words) EXPECT_EQ(w, 0u);
}

TEST_F(TxnOverflow, RepeatedStoresToSameWordCoalesce) {
  config().store_buffer_capacity = 4;
  uint64_t x = 0;
  const TryResult r = try_once([&](Txn& txn) {
    for (int i = 0; i < 100; ++i) txn.store(&x, uint64_t(i));
  });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(x, 99u);
}

TEST_F(TxnOverflow, ChargedStoresCountAgainstBudget) {
  config().store_buffer_capacity = 8;
  uint64_t x = 0;
  const TryResult r = try_once([&](Txn& txn) {
    txn.charge_store(8);  // e.g. 8 result-set records
    txn.store(&x, uint64_t{1});
  });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kOverflow);
}

TEST_F(TxnOverflow, ChargeBeyondBudgetAborts) {
  config().store_buffer_capacity = 8;
  const TryResult r = try_once([&](Txn& txn) { txn.charge_store(9); });
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.code, AbortCode::kOverflow);
}

TEST_F(TxnOverflow, DefaultCapacityMatchesRock) {
  EXPECT_EQ(Config{}.store_buffer_capacity, 32u);
}

TEST_F(TxnOverflow, LoadsAreUnbounded) {
  std::vector<uint64_t> words(1000, 1);
  uint64_t sum = 0;
  const TryResult r = try_once([&](Txn& txn) {
    sum = 0;
    for (auto& w : words) sum += txn.load(&w);
  });
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(sum, 1000u);
}

TEST_F(TxnOverflow, OverflowAbortIsRecordedInStats) {
  config().store_buffer_capacity = 2;
  reset_stats();
  std::vector<uint64_t> words(3, 0);
  (void)try_once([&](Txn& txn) {
    for (auto& w : words) txn.store(&w, uint64_t{1});
  });
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.aborts_by_code[static_cast<int>(AbortCode::kOverflow)], 1u);
}

}  // namespace
}  // namespace dc::htm
