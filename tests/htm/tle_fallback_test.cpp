// Direct coverage of the TLE fallback path (paper §6) under both global
// clock policies: scripted faults force the lock deterministically, the
// acquirer dooms in-flight speculation and drains write-backs, and strong
// atomicity (nontxn_store) composes with lock-mode execution.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "htm/fault.hpp"
#include "htm/htm.hpp"
#include "util/barrier.hpp"

namespace dc::htm {
namespace {

class TleFallback : public ::testing::TestWithParam<ClockPolicy> {
 protected:
  void SetUp() override {
    saved_ = config();
    config().clock_policy = GetParam();
    fault::clear_script();
    reset_stats();
    reset_storm_sites();
    fault::reset_thread();
  }
  void TearDown() override {
    fault::clear_script();
    config() = saved_;
    reset_storm_sites();
    fault::reset_thread();
  }
  Config saved_;
};

TEST_P(TleFallback, ScriptedFaultForcesFallbackAtThresholdOne) {
  // tle_after_aborts=1: one spurious abort exhausts the budget, so the
  // retry must run under the lock — and commit there, because lock-mode
  // attempts are never armed.
  config().tle_after_aborts = 1;
  fault::set_script({{fault::kAnyThread, 0, 0, AbortCode::kInterrupt, 0}});
  fault::reset_thread();
  uint64_t word = 0;
  atomic([&](Txn& txn) { txn.store(&word, uint64_t{42}); });
  EXPECT_EQ(word, 42u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.faults_injected, 1u);
  EXPECT_EQ(s.tle_entries, 1u);
  EXPECT_EQ(s.lock_fallbacks, 1u);
  EXPECT_EQ(s.commits, 1u);
}

TEST_P(TleFallback, RateOneStormAlwaysCompletesViaLock) {
  // The acceptance-criteria shape: injection at rate 1.0 kills every
  // speculative attempt, yet every block completes and tle_entries > 0.
  config().tle_after_aborts = 3;
  config().fault.rate = 1.0;
  fault::reset_thread();
  uint64_t word = 0;
  for (int i = 0; i < 20; ++i) {
    atomic([&](Txn& txn) { txn.store(&word, txn.load(&word) + 1); });
  }
  EXPECT_EQ(word, 20u);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, 20u);
  EXPECT_EQ(s.tle_entries, 20u);
  EXPECT_EQ(s.faults_injected, 20u * 3u);
}

TEST_P(TleFallback, LockAcquirerDoomsInFlightSpeculation) {
  // A transaction that read the lock word before the acquirer bumped it
  // must not commit afterward: the worker's increments land either wholly
  // before the section (impossible here: it starts inside) or after it.
  uint64_t counter = 0;
  util::SpinBarrier barrier(2);
  std::atomic<bool> section_done{false};
  std::thread worker([&] {
    barrier.arrive_and_wait();
    for (int i = 0; i < 50; ++i) {
      atomic([&](Txn& txn) { txn.store(&counter, txn.load(&counter) + 1); });
    }
  });
  {
    SerialSection section;
    barrier.arrive_and_wait();
    // The worker is now spinning against the held lock: its transactions
    // read the lock word and abort. Nothing can commit into `counter`.
    const uint64_t before = nontxn_load(&counter);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(nontxn_load(&counter), before);
    EXPECT_EQ(before, 0u);
    section_done.store(true);
  }
  worker.join();
  EXPECT_TRUE(section_done.load());
  EXPECT_EQ(counter, 50u);
}

TEST_P(TleFallback, MixedSpeculativeAndFallbackUpdatesStayAtomic) {
  // Write-back drain: lock acquirers must wait for in-flight speculative
  // write-backs, or a fallback block could interleave with a half-applied
  // commit. Faults at 30% force constant speculation/lock transitions; the
  // counter total proves mutual atomicity.
  config().tle_after_aborts = 2;
  config().fault.rate = 0.3;
  constexpr int kThreads = 4;
  constexpr int kIters = 400;
  uint64_t counter = 0;
  std::vector<uint64_t> spread(8, 0);
  util::SpinBarrier barrier(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      fault::reset_thread();
      barrier.arrive_and_wait();
      for (int i = 0; i < kIters; ++i) {
        atomic([&](Txn& txn) {
          const uint64_t c = txn.load(&counter);
          // Touch several words so write-back is multi-store and a torn
          // drain would be visible as a mismatched spread sum.
          for (auto& w : spread) txn.store(&w, c + 1);
          txn.store(&counter, c + 1);
        });
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<uint64_t>(kThreads) * kIters);
  for (const uint64_t w : spread) EXPECT_EQ(w, counter);
  const TxnStats s = aggregate_stats();
  EXPECT_EQ(s.commits, static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_GT(s.faults_injected, 0u);
}

TEST_P(TleFallback, LockModeLoadsSeeOwnBufferedStores) {
  // Lock-mode stores stay buffered until commit; a load of a word the
  // block already stored must return the buffered value, not memory.
  // (Regression: raw lock-mode loads turned self-transfers into money
  // printers — load v, buffer v-1, re-load saw v again, buffer v+1.)
  config().serialize_all = true;
  uint64_t word = 100;
  atomic([&](Txn& txn) {
    const uint64_t v = txn.load(&word);
    txn.store(&word, v - 1);
    txn.store(&word, txn.load(&word) + 1);
  });
  EXPECT_EQ(word, 100u);
}

TEST_P(TleFallback, NontxnStoreComposesWithLockModeBlocks) {
  // Strong atomicity while the block itself runs under the lock: the
  // nontxn_store targets a word outside the transaction's sets, acquires
  // that word's orec, and must neither deadlock against the held TLE lock
  // nor be lost.
  config().tle_after_aborts = 1;
  config().fault.rate = 1.0;  // every block escalates to the lock
  fault::reset_thread();
  uint64_t txn_word = 0;
  uint64_t flag = 0;
  atomic([&](Txn& txn) {
    txn.store(&txn_word, uint64_t{1});
    if (txn.in_lock_mode()) nontxn_store(&flag, uint64_t{0xF1A6});
  });
  EXPECT_EQ(txn_word, 1u);
  EXPECT_EQ(flag, 0xF1A6u);
  EXPECT_GE(aggregate_stats().tle_entries, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothClocks, TleFallback,
                         ::testing::Values(ClockPolicy::kGv1,
                                           ClockPolicy::kGv5),
                         [](const ::testing::TestParamInfo<ClockPolicy>& i) {
                           return std::string(to_string(i.param));
                         });

}  // namespace
}  // namespace dc::htm
