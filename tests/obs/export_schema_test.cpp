// Validates the two exporter schemas by parsing what they write:
//  * export_chrome_trace — Chrome trace-event JSON (Perfetto-loadable);
//  * bench::write_json_report — the versioned --json benchmark report
//    (schema_version 9: aborts_by_code incl. spurious causes and the v9
//    alloc-failed code, op_latency_ns incl. the validate op, conflicts,
//    trace requested/enabled split, retry/validation policy and
//    fault-rate/crash-rate/sample-interval/slo options plus the v8
//    slo_observe flag and the v9 mem_limit/alloc_fault_rate pair,
//    robustness counters incl. the crash triple and the
//    signature-validation triple, per-cause retry quantiles, the
//    always-present v9 `mem` section (global pool accounting plus
//    per-thread ledgers), and — only when the telemetry sampler ran — the
//    timeline section, whose shape (incl. the v8 SLO episode ledger and
//    the shed_onset/chaos_phase/mem_pressure annotations) is covered by
//    tests/obs/timeline_test.cpp; the v8 `service` section is emitted only
//    by bench_service and is absent from every other report).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "obs/conflict_map.hpp"
#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace {

using namespace dc;
using dc::util::Json;

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  if (f == nullptr) return {};
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

const Json* field(const Json& v, const std::string& key, Json::Type type) {
  const Json* f = v.find(key);
  EXPECT_NE(f, nullptr) << "missing field " << key;
  if (f != nullptr) {
    EXPECT_EQ(f->type(), type) << "field " << key;
  }
  return f;
}

TEST(ChromeTrace, PairsBeginWithOutcomeIntoCompleteEvents) {
  obs::clear_trace();
  using obs::EventKind;
  // A committing transaction, an aborting one, and three instants.
  obs::detail::emit(EventKind::kTxnBegin, 0, /*lock_mode=*/0, 0, 0);
  obs::detail::emit(EventKind::kTxnCommit, 0, /*rs=*/3, /*ws=*/2, /*att=*/1);
  obs::detail::emit(EventKind::kTxnBegin, 0, 0, 0, 0);
  obs::detail::emit(EventKind::kTxnAbort, /*conflict*/ 1, 5, 0, 2);
  obs::detail::emit(EventKind::kTleFallback, 0, /*attempt=*/3, 0, 0);
  obs::detail::emit(EventKind::kStepChange, /*grow*/ 1, 4, 8, 0);
  obs::detail::emit(EventKind::kPoolAlloc, 0, /*bytes=*/64, 0, 0);

  const std::string path = testing::TempDir() + "chrome_trace_test.json";
  ASSERT_TRUE(obs::export_chrome_trace(path));
  obs::clear_trace();

  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(field(*doc, "displayTimeUnit", Json::Type::kString)->str(), "ns");
  const Json* events = field(*doc, "traceEvents", Json::Type::kArray);
  ASSERT_NE(events, nullptr);
  // 2 complete spans + 3 instants; begins are folded, not emitted.
  ASSERT_EQ(events->items().size(), 5u);

  int complete = 0;
  int instants = 0;
  for (const Json& e : events->items()) {
    const std::string ph = field(e, "ph", Json::Type::kString)->str();
    field(e, "ts", Json::Type::kNumber);
    field(e, "tid", Json::Type::kNumber);
    field(e, "pid", Json::Type::kNumber);
    if (ph == "X") {
      ++complete;
      field(e, "dur", Json::Type::kNumber);
      const Json* args = field(e, "args", Json::Type::kObject);
      const std::string outcome = args->find("outcome")->str();
      if (outcome == "commit") {
        EXPECT_DOUBLE_EQ(args->find("read_set")->number(), 3.0);
        EXPECT_DOUBLE_EQ(args->find("write_set")->number(), 2.0);
        EXPECT_DOUBLE_EQ(args->find("attempt")->number(), 1.0);
        EXPECT_EQ(args->find("abort")->str(), "none");
      } else {
        EXPECT_EQ(outcome, "abort");
        EXPECT_EQ(args->find("abort")->str(), "conflict");
        EXPECT_DOUBLE_EQ(args->find("read_set")->number(), 5.0);
      }
    } else {
      ++instants;
      EXPECT_EQ(ph, "i");
    }
  }
  EXPECT_EQ(complete, 2);
  EXPECT_EQ(instants, 3);
  std::remove(path.c_str());
}

TEST(ChromeTrace, OrphanEndBecomesInstant) {
  obs::clear_trace();
  // A commit whose begin was overwritten by ring wrap-around.
  obs::detail::emit(obs::EventKind::kTxnCommit, 0, 1, 1, 0);
  const std::string path = testing::TempDir() + "chrome_trace_orphan.json";
  ASSERT_TRUE(obs::export_chrome_trace(path));
  obs::clear_trace();
  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.has_value());
  const Json* events = doc->find("traceEvents");
  ASSERT_EQ(events->items().size(), 1u);
  EXPECT_EQ(events->items()[0].find("ph")->str(), "i");
  EXPECT_EQ(events->items()[0].find("name")->str(), "txn_commit");
  std::remove(path.c_str());
}

TEST(ChromeTrace, EmptyTraceIsValidJson) {
  obs::clear_trace();
  const std::string path = testing::TempDir() + "chrome_trace_empty.json";
  ASSERT_TRUE(obs::export_chrome_trace(path));
  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->find("traceEvents")->items().size(), 0u);
  std::remove(path.c_str());
}

TEST(OpSummary, QuantilesAreOrderedAndInNanoseconds) {
  obs::reset_histograms();
  for (uint64_t c = 100; c <= 100000; c += 100) {
    obs::record_op(obs::OpKind::kUpdate, c);
  }
  const obs::OpSummary s = obs::summarize_op(obs::OpKind::kUpdate);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_GT(s.p50_ns, 0.0);
  EXPECT_LE(s.p50_ns, s.p90_ns);
  EXPECT_LE(s.p90_ns, s.p99_ns);
  EXPECT_LE(s.p99_ns, s.max_ns * 1.07);  // bucket-midpoint error bound
  obs::reset_histograms();
  EXPECT_EQ(obs::summarize_op(obs::OpKind::kUpdate).count, 0u);
}

TEST(JsonReport, SchemaV9CarriesObsSections) {
  obs::reset_histograms();
  obs::reset_conflicts();
  obs::reset_retry_stats();
  // Populate every op histogram plus the conflict table with known data.
  for (int op = 0; op < static_cast<int>(obs::OpKind::kNumOps); ++op) {
    obs::record_op(static_cast<obs::OpKind>(op), 1000 + 100 * op);
    obs::record_op(static_cast<obs::OpKind>(op), 2000 + 100 * op);
  }
  // Two conflict retries at attempts 0 and 3 for the retry section.
  obs::record_retry(/*cause=conflict*/ 1, 0);
  obs::record_retry(1, 3);
  const uint8_t ctx = obs::register_context("SchemaAlgo");
  obs::set_thread_context(ctx);
  for (int i = 0; i < 3; ++i) obs::record_conflict(99);
  obs::set_thread_context(0);

  util::Table table({"threads", "SchemaAlgo"});
  table.add_row({"1", "2.5"});
  table.add_row({"2", "4.75"});
  sim::Options opts;
  opts.hist = true;
  const std::string path = testing::TempDir() + "report_schema_test.json";
  bench::write_json_report(path, "schema_test", table, opts);

  const auto doc = Json::parse(read_file(path));
  ASSERT_TRUE(doc.has_value()) << "report is not valid JSON";
  EXPECT_DOUBLE_EQ(field(*doc, "schema_version", Json::Type::kNumber)->number(),
                   9.0);
  EXPECT_EQ(field(*doc, "bench", Json::Type::kString)->str(), "schema_test");

  const Json* options = field(*doc, "options", Json::Type::kObject);
  EXPECT_TRUE(options->find("hist")->boolean());
  EXPECT_FALSE(options->find("trace")->boolean());
  const std::string clock = field(*options, "clock", Json::Type::kString)->str();
  EXPECT_TRUE(clock == "gv1" || clock == "gv5") << clock;
  const std::string retry_opt =
      field(*options, "retry", Json::Type::kString)->str();
  EXPECT_TRUE(retry_opt == "cause" || retry_opt == "fixed") << retry_opt;
  field(*options, "fault_rate", Json::Type::kNumber);
  field(*options, "crash_rate", Json::Type::kNumber);
  // Telemetry off in this run: interval 0, empty SLO spec, and (checked
  // below) no timeline section at all — the zero-overhead shape.
  EXPECT_DOUBLE_EQ(
      field(*options, "sample_interval_ms", Json::Type::kNumber)->number(),
      0.0);
  EXPECT_EQ(field(*options, "slo", Json::Type::kString)->str(), "");
  EXPECT_FALSE(field(*options, "slo_observe", Json::Type::kBool)->boolean());
  // v9 memory-tier options: no bound, no injection in this run.
  EXPECT_DOUBLE_EQ(field(*options, "mem_limit", Json::Type::kNumber)->number(),
                   0.0);
  EXPECT_DOUBLE_EQ(
      field(*options, "alloc_fault_rate", Json::Type::kNumber)->number(), 0.0);
  const std::string validation =
      field(*options, "validation", Json::Type::kString)->str();
  EXPECT_TRUE(validation == "exact" || validation == "sig") << validation;

  // HTM counters with the per-code abort breakdown.
  const Json* htm = field(*doc, "htm", Json::Type::kObject);
  field(*htm, "commits", Json::Type::kNumber);
  for (const char* counter :
       {"writer_commits", "clock_bumps", "sloppy_stamps", "clock_resamples",
        "clock_catchups", "coalesced_stores", "faults_injected",
        "crashes_injected", "lock_recoveries", "orphans_reaped",
        "sig_validations", "sig_false_aborts", "sig_ring_overflows",
        "tle_entries", "storm_entries", "storm_exits", "max_consec_aborts"}) {
    field(*htm, counter, Json::Type::kNumber);
  }
  // This in-process run injected nothing: the crash triple must be exactly
  // zero (the zero-overhead guard the validator enforces out of process).
  EXPECT_DOUBLE_EQ(htm->find("crashes_injected")->number(), 0.0);
  EXPECT_DOUBLE_EQ(htm->find("lock_recoveries")->number(), 0.0);
  EXPECT_DOUBLE_EQ(htm->find("orphans_reaped")->number(), 0.0);
  // Same dormancy contract for the signature backend: this run validated
  // through the default exact walk, so the sig triple must be exactly zero.
  if (validation == "exact") {
    EXPECT_DOUBLE_EQ(htm->find("sig_validations")->number(), 0.0);
    EXPECT_DOUBLE_EQ(htm->find("sig_false_aborts")->number(), 0.0);
    EXPECT_DOUBLE_EQ(htm->find("sig_ring_overflows")->number(), 0.0);
  }
  const Json* by_code = field(*htm, "aborts_by_code", Json::Type::kObject);
  for (const char* code :
       {"none", "conflict", "overflow", "explicit", "illegal-access",
        "interrupt", "tlb-miss", "save-restore", "alloc-failed"}) {
    field(*by_code, code, Json::Type::kNumber);
  }

  // Per-cause retry quantiles, with the two conflict samples we recorded.
  const Json* retry = field(*doc, "retry", Json::Type::kObject);
  const std::string policy =
      field(*retry, "policy", Json::Type::kString)->str();
  EXPECT_TRUE(policy == "cause" || policy == "fixed") << policy;
  const Json* by_cause = field(*retry, "by_cause", Json::Type::kObject);
  for (const char* cause :
       {"none", "conflict", "overflow", "explicit", "illegal-access",
        "interrupt", "tlb-miss", "save-restore", "alloc-failed"}) {
    const Json* entry = field(*by_cause, cause, Json::Type::kObject);
    field(*entry, "count", Json::Type::kNumber);
    field(*entry, "p50_attempt", Json::Type::kNumber);
    field(*entry, "p99_attempt", Json::Type::kNumber);
    field(*entry, "max_attempt", Json::Type::kNumber);
  }
  const Json* conflict_retry = by_cause->find("conflict");
  EXPECT_DOUBLE_EQ(conflict_retry->find("count")->number(), 2.0);
  EXPECT_DOUBLE_EQ(conflict_retry->find("max_attempt")->number(), 3.0);

  // Per-operation latency quantiles for every op, with our recorded counts.
  const Json* lat = field(*doc, "op_latency_ns", Json::Type::kObject);
  for (const char* op :
       {"register", "update", "deregister", "collect", "commit",
        "validate"}) {
    const Json* entry = field(*lat, op, Json::Type::kObject);
    EXPECT_DOUBLE_EQ(field(*entry, "count", Json::Type::kNumber)->number(),
                     2.0);
    EXPECT_GT(field(*entry, "p50", Json::Type::kNumber)->number(), 0.0);
    field(*entry, "p90", Json::Type::kNumber);
    EXPECT_GE(field(*entry, "p99", Json::Type::kNumber)->number(),
              entry->find("p50")->number());
    field(*entry, "max", Json::Type::kNumber);
    field(*entry, "mean", Json::Type::kNumber);
  }

  // Top-K conflict attribution keyed by algorithm label.
  const Json* conflicts = field(*doc, "conflicts", Json::Type::kObject);
  EXPECT_DOUBLE_EQ(conflicts->find("recorded")->number(), 3.0);
  EXPECT_DOUBLE_EQ(conflicts->find("dropped")->number(), 0.0);
  const Json* top = field(*conflicts, "top", Json::Type::kArray);
  ASSERT_EQ(top->items().size(), 1u);
  EXPECT_DOUBLE_EQ(top->items()[0].find("orec")->number(), 99.0);
  EXPECT_DOUBLE_EQ(top->items()[0].find("count")->number(), 3.0);
  const Json* by_algo =
      field(top->items()[0], "by_algo", Json::Type::kObject);
  ASSERT_NE(by_algo->find("SchemaAlgo"), nullptr);
  EXPECT_DOUBLE_EQ(by_algo->find("SchemaAlgo")->number(), 3.0);

  // Trace section mirrors the build's compile-time gate and the runtime
  // switch: no --trace here, so requested and enabled are both false
  // regardless of how the binary was compiled.
  const Json* trace = field(*doc, "trace", Json::Type::kObject);
  EXPECT_EQ(trace->find("compiled")->boolean(), obs::kTraceCompiled);
  EXPECT_FALSE(field(*trace, "requested", Json::Type::kBool)->boolean());
  EXPECT_FALSE(field(*trace, "enabled", Json::Type::kBool)->boolean());
  field(*trace, "events_emitted", Json::Type::kNumber);

  // The v9 mem section is on every report (the pool is always live):
  // global pool accounting plus one ledger per thread that ever touched
  // the pool. This run bounded nothing and injected nothing, so the
  // failure-path counters must be exactly zero and the global ledger must
  // balance.
  const Json* mem = field(*doc, "mem", Json::Type::kObject);
  for (const char* counter :
       {"limit_bytes", "os_bytes", "live_bytes", "live_blocks",
        "allocations", "deallocations", "alloc_failures",
        "alloc_faults_injected", "cache_blocks_stranded",
        "cache_blocks_reaped", "mem_pressure_onsets", "mem_pressure_exits",
        "alloc_fault_rate"}) {
    field(*mem, counter, Json::Type::kNumber);
  }
  EXPECT_DOUBLE_EQ(mem->find("alloc_failures")->number(), 0.0);
  EXPECT_DOUBLE_EQ(mem->find("alloc_faults_injected")->number(), 0.0);
  EXPECT_DOUBLE_EQ(mem->find("mem_pressure_onsets")->number(), 0.0);
  EXPECT_DOUBLE_EQ(mem->find("mem_pressure_exits")->number(), 0.0);
  EXPECT_DOUBLE_EQ(mem->find("allocations")->number() -
                       mem->find("deallocations")->number(),
                   mem->find("live_blocks")->number());
  const Json* threads = field(*mem, "threads", Json::Type::kArray);
  double thread_allocs = 0.0;
  for (const Json& t : threads->items()) {
    field(t, "tid", Json::Type::kNumber);
    field(t, "deallocations", Json::Type::kNumber);
    field(t, "alloc_failures", Json::Type::kNumber);
    field(t, "alloc_faults_injected", Json::Type::kNumber);
    thread_allocs += field(t, "allocations", Json::Type::kNumber)->number();
  }
  EXPECT_DOUBLE_EQ(thread_allocs, mem->find("allocations")->number());

  // Sampler never ran: the timeline section must be absent entirely. And
  // this is not a bench_service report, so the v8 service section must be
  // absent too — only the service harness may emit it.
  EXPECT_EQ(doc->find("timeline"), nullptr);
  EXPECT_EQ(doc->find("service"), nullptr);

  // The swept table survives unchanged, with numeric cells as numbers.
  const Json* columns = field(*doc, "columns", Json::Type::kArray);
  ASSERT_EQ(columns->items().size(), 2u);
  EXPECT_EQ(columns->items()[0].str(), "threads");
  const Json* rows = field(*doc, "rows", Json::Type::kArray);
  ASSERT_EQ(rows->items().size(), 2u);
  EXPECT_DOUBLE_EQ(rows->items()[1].items()[1].number(), 4.75);

  obs::reset_histograms();
  obs::reset_conflicts();
  obs::reset_retry_stats();
  std::remove(path.c_str());
}

}  // namespace
