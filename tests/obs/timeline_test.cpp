// Continuous-telemetry sampler: lifecycle, window-delta conservation under
// concurrent load, anomaly-annotation sums, ring/event-capacity bounds, SLO
// parsing + per-window evaluation + exit codes, and the zero-overhead-off
// guarantees. The sampler is a process singleton, so every test stops and
// resets it on the way out (gtest runs these sequentially).
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/slo.hpp"
#include "util/cycles.hpp"

namespace {

using namespace dc;
namespace tl = obs::timeline;

// Synthetic counter source (CounterProvider is a plain function pointer, so
// the backing state is file-static). Tests bump the atomics; the sampler
// reads them through the same callback seam bench_common wires to
// htm::aggregate_stats.
std::atomic<uint64_t> g_commits{0};
std::atomic<uint64_t> g_aborts{0};
std::atomic<uint64_t> g_storms{0};
std::atomic<uint64_t> g_storm_exits{0};
std::atomic<uint64_t> g_crashes{0};
std::atomic<uint64_t> g_shed{0};
std::atomic<uint64_t> g_chaos_phases{0};

tl::CounterSample synthetic_provider() {
  tl::CounterSample c;
  c.commits = g_commits.load(std::memory_order_relaxed);
  c.aborts = g_aborts.load(std::memory_order_relaxed);
  c.storm_entries = g_storms.load(std::memory_order_relaxed);
  c.storm_exits = g_storm_exits.load(std::memory_order_relaxed);
  c.crashes_injected = g_crashes.load(std::memory_order_relaxed);
  c.sessions_shed = g_shed.load(std::memory_order_relaxed);
  c.chaos_phases = g_chaos_phases.load(std::memory_order_relaxed);
  return c;
}

void zero_counters() {
  g_commits = 0;
  g_aborts = 0;
  g_storms = 0;
  g_storm_exits = 0;
  g_crashes = 0;
  g_shed = 0;
  g_chaos_phases = 0;
}

tl::SamplerConfig config(double interval_ms = 1.0) {
  tl::SamplerConfig cfg;
  cfg.interval_ms = interval_ms;
  cfg.provider = &synthetic_provider;
  return cfg;
}

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

class TimelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    zero_counters();
    ASSERT_FALSE(tl::running());
    ASSERT_TRUE(tl::reset());
  }
  void TearDown() override {
    tl::stop();
    tl::reset();
  }
};

TEST_F(TimelineTest, LifecycleStartStopReset) {
  EXPECT_FALSE(tl::running());
  ASSERT_TRUE(tl::start(config()));
  EXPECT_TRUE(tl::running());
  EXPECT_FALSE(tl::start(config())) << "second start must be refused";
  EXPECT_FALSE(tl::reset()) << "reset is quiescent-only";
  EXPECT_DOUBLE_EQ(tl::interval_ms(), 1.0);
  EXPECT_NE(tl::start_cycles(), 0u);
  tl::stop();
  EXPECT_FALSE(tl::running());
  // Final partial window is closed by stop even if no interval elapsed.
  EXPECT_GE(tl::windows_total(), 1u);
  tl::stop();  // idempotent
  EXPECT_TRUE(tl::reset());
  EXPECT_EQ(tl::windows_total(), 0u);
  EXPECT_DOUBLE_EQ(tl::interval_ms(), 0.0);
  EXPECT_EQ(tl::start_cycles(), 0u);
}

TEST_F(TimelineTest, RejectsBadConfig) {
  tl::SamplerConfig cfg = config();
  cfg.provider = nullptr;
  EXPECT_FALSE(tl::start(cfg));
  cfg = config(0.0);
  EXPECT_FALSE(tl::start(cfg));
  cfg = config(-5.0);
  EXPECT_FALSE(tl::start(cfg));
  cfg = config();
  cfg.window_capacity = 0;
  EXPECT_FALSE(tl::start(cfg));
  EXPECT_FALSE(tl::running());
}

TEST_F(TimelineTest, WindowDeltasTelescopeToFinalCounters) {
  // Four writers hammer the counters while the sampler runs at 1 ms. The
  // per-window deltas are saturating differences of monotonic samples, so
  // they telescope: baseline + sum(deltas) == the provider's final value,
  // exactly — the property that makes the timeline a decomposition of the
  // post-mortem counters rather than an approximation of them.
  ASSERT_TRUE(tl::start(config(1.0)));
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 20000; ++i) {
        g_commits.fetch_add(1, std::memory_order_relaxed);
        if (i % 7 == 0) g_aborts.fetch_add(1, std::memory_order_relaxed);
        if (i % 5000 == 0) sleep_ms(1);
      }
    });
  }
  for (auto& w : workers) w.join();
  tl::stop();  // closes the final partial window AFTER the workers stopped

  const std::vector<tl::Window> wins = tl::windows();
  ASSERT_FALSE(wins.empty());
  ASSERT_EQ(tl::windows_dropped(), 0u) << "capacity 4096 must not wrap here";
  ASSERT_EQ(wins.size(), tl::windows_total());
  uint64_t commits = tl::baseline().commits;
  uint64_t aborts = tl::baseline().aborts;
  double prev_end = 0.0;
  uint64_t prev_index = 0;
  for (std::size_t i = 0; i < wins.size(); ++i) {
    const tl::Window& w = wins[i];
    commits += w.delta.commits;
    aborts += w.delta.aborts;
    // Windows tile the run: contiguous, ordered, monotonically indexed.
    EXPECT_DOUBLE_EQ(w.t_start_ms, prev_end);
    EXPECT_GE(w.t_end_ms, w.t_start_ms);
    if (i > 0) {
      EXPECT_EQ(w.index, prev_index + 1);
    }
    prev_end = w.t_end_ms;
    prev_index = w.index;
  }
  EXPECT_EQ(commits, g_commits.load());
  EXPECT_EQ(aborts, g_aborts.load());
  EXPECT_EQ(commits, 4u * 20000u);
}

TEST_F(TimelineTest, AnnotationSumsDecomposeCounters) {
  ASSERT_TRUE(tl::start(config(1.0)));
  // Anomalies in separate windows: 2 storm entries, later 1 exit, 3 crashes.
  g_storms.fetch_add(2);
  sleep_ms(4);
  g_storm_exits.fetch_add(1);
  g_crashes.fetch_add(3);
  sleep_ms(4);
  tl::stop();

  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kStormOnset), 2u);
  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kStormExit), 1u);
  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kThreadCrash), 3u);
  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kLockRecovery), 0u);
  EXPECT_EQ(tl::events_dropped(), 0u);

  // Every event's value is its window's delta; per-kind value sums must
  // reproduce the totals, and each event must point at a window whose
  // matching delta is the event's value.
  uint64_t onset = 0, exits = 0, crashes = 0;
  const std::vector<tl::Window> wins = tl::windows();
  for (const tl::Event& e : tl::annotations()) {
    ASSERT_LT(e.window, wins.size());
    const tl::Window& w = wins[e.window];  // no drops: index == position
    switch (e.kind) {
      case tl::Annotation::kStormOnset:
        onset += e.value;
        EXPECT_EQ(w.delta.storm_entries, e.value);
        break;
      case tl::Annotation::kStormExit:
        exits += e.value;
        EXPECT_EQ(w.delta.storm_exits, e.value);
        break;
      case tl::Annotation::kThreadCrash:
        crashes += e.value;
        EXPECT_EQ(w.delta.crashes_injected, e.value);
        break;
      default:
        ADD_FAILURE() << "unexpected annotation kind";
    }
    EXPECT_DOUBLE_EQ(e.t_ms, w.t_end_ms);
  }
  EXPECT_EQ(onset, 2u);
  EXPECT_EQ(exits, 1u);
  EXPECT_EQ(crashes, 3u);
}

TEST_F(TimelineTest, RingWrapKeepsNewestWindowsAndCountsDrops) {
  tl::SamplerConfig cfg = config(1.0);
  cfg.window_capacity = 4;
  ASSERT_TRUE(tl::start(cfg));
  while (tl::windows_total() < 10) sleep_ms(2);
  tl::stop();

  const std::vector<tl::Window> wins = tl::windows();
  ASSERT_EQ(wins.size(), 4u);
  EXPECT_EQ(tl::windows_dropped(), tl::windows_total() - 4);
  // Oldest-first, contiguous, ending at the last window produced.
  for (std::size_t i = 1; i < wins.size(); ++i) {
    EXPECT_EQ(wins[i].index, wins[i - 1].index + 1);
  }
  EXPECT_EQ(wins.back().index, tl::windows_total() - 1);
}

TEST_F(TimelineTest, EventCapacityDropsAreCountedButSumsStayExact) {
  tl::SamplerConfig cfg = config(1.0);
  cfg.event_capacity = 1;
  ASSERT_TRUE(tl::start(cfg));
  // One storm entry per window across four windows: waiting for a window
  // to close between bumps guarantees each bump lands in its own window
  // delta regardless of scheduler jitter (a loaded ctest host can stall
  // the sampler arbitrarily). The first anomaly becomes an event, the
  // remaining three are dropped — but the conservation sums keep
  // counting, so the totals stay exact even when the event list lies.
  for (int i = 0; i < 4; ++i) {
    g_storms.fetch_add(1);
    const uint64_t before = tl::windows_total();
    while (tl::windows_total() == before) sleep_ms(1);
  }
  tl::stop();
  EXPECT_EQ(tl::annotations().size(), 1u);
  EXPECT_EQ(tl::events_dropped(), 3u);
  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kStormOnset), 4u);
}

TEST_F(TimelineTest, WindowsCarryIntervalLatencyPercentiles) {
  obs::reset_histograms();  // sampler not running yet: allowed
  ASSERT_TRUE(tl::start(config(2.0)));
  // ~1µs-scale samples recorded while the sampler runs; some window must
  // pick them up as interval percentiles for the update op.
  const uint64_t cycles_1us = util::ns_to_cycles(1000);
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 50; ++i) {
      obs::record_op(obs::OpKind::kUpdate, cycles_1us);
    }
    // Force a window boundary between batches so the samples provably
    // spread over several windows even on a stalled, loaded host.
    const uint64_t before = tl::windows_total();
    while (tl::windows_total() == before) sleep_ms(1);
  }
  tl::stop();
  uint64_t total = 0;
  int windows_with_updates = 0;
  for (const tl::Window& w : tl::windows()) {
    const tl::OpWindow& ow =
        w.ops[static_cast<std::size_t>(obs::OpKind::kUpdate)];
    total += ow.count;
    if (ow.count == 0) continue;
    ++windows_with_updates;
    EXPECT_GT(ow.p50_ns, 0.0f);
    EXPECT_LE(ow.p50_ns, ow.p90_ns);
    EXPECT_LE(ow.p90_ns, ow.p99_ns);
    EXPECT_LE(ow.p99_ns, ow.p999_ns);
    // Interval percentiles must reflect the ~1µs samples, not be zero or
    // wildly off (log-bucket midpoint error is <7%).
    EXPECT_GT(ow.p50_ns, 800.0f);
    EXPECT_LT(ow.p50_ns, 1300.0f);
  }
  EXPECT_EQ(total, 200u) << "interval counts must telescope to the total";
  EXPECT_GT(windows_with_updates, 1)
      << "samples spread over >=2 windows (sleeps straddle interval)";
  obs::reset_histograms();
}

TEST_F(TimelineTest, SloViolationsAccumulateAndSetExitCode) {
  obs::reset_histograms();
  tl::SamplerConfig cfg = config(2.0);
  std::string err;
  // First target is impossible (every nonzero p99 >= 1ns); second is
  // untestable here (no collect samples) and must stay vacuous.
  ASSERT_TRUE(obs::slo::parse("update_p99<1ns,collect_p99<1ms", &cfg.slo,
                              &err))
      << err;
  ASSERT_TRUE(tl::start(cfg));
  const uint64_t cycles_1us = util::ns_to_cycles(1000);
  for (int i = 0; i < 100; ++i) {
    obs::record_op(obs::OpKind::kUpdate, cycles_1us);
    if (i % 25 == 0) sleep_ms(3);
  }
  tl::stop();

  const std::vector<obs::slo::TargetState> results = tl::slo_results();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].windows_evaluated, 0u);
  EXPECT_GT(results[0].violations, 0u);
  EXPECT_GT(results[0].worst_ns, 0.0);
  EXPECT_EQ(results[1].windows_evaluated, 0u) << "no collect samples";
  EXPECT_EQ(results[1].violations, 0u);
  EXPECT_EQ(tl::slo_violations_total(), results[0].violations);
  EXPECT_EQ(obs::slo::exit_code(tl::slo_violations_total()), 3);
  EXPECT_EQ(obs::slo::exit_code(0), 0);
  obs::reset_histograms();
}

TEST_F(TimelineTest, EpisodesTrackViolationAndReattainment) {
  // Violate for a stretch, then run clean: exactly one closed episode,
  // recovered, and slo_reattainments() counts it. This is the MTTR
  // primitive the chaos orchestrator's per-phase reports are built on.
  obs::reset_histograms();
  tl::SamplerConfig cfg = config(2.0);
  std::string err;
  ASSERT_TRUE(obs::slo::parse("update_p99<1ms", &cfg.slo, &err)) << err;
  ASSERT_TRUE(tl::start(cfg));
  const uint64_t slow = util::ns_to_cycles(5'000'000);  // 5ms >> 1ms bound
  const uint64_t fast = util::ns_to_cycles(1'000);      // 1us << bound
  for (int i = 0; i < 50; ++i) obs::record_op(obs::OpKind::kUpdate, slow);
  sleep_ms(6);  // the violating window(s) close
  for (int w = 0; w < 4; ++w) {
    for (int i = 0; i < 50; ++i) obs::record_op(obs::OpKind::kUpdate, fast);
    sleep_ms(3);  // clean evaluated windows close the episode
  }
  tl::stop();

  EXPECT_GE(tl::slo_reattainments(), 1u);
  const std::vector<tl::SloEpisode> eps = tl::slo_episodes();
  ASSERT_GE(eps.size(), 1u);
  const tl::SloEpisode& e = eps.front();
  EXPECT_TRUE(e.recovered);
  EXPECT_GE(e.violating_windows, 1u);
  EXPECT_GE(e.end_window, e.start_window);
  EXPECT_GE(e.t_end_ms, e.t_start_ms);
  obs::reset_histograms();
}

TEST_F(TimelineTest, UnrecoveredEpisodeStaysOpenAndVacuousWindowsDontClose) {
  // A violation followed only by idle (sample-less) windows: vacuous
  // windows must NOT count as re-attainment — the episode ends the run
  // open (recovered == false) and reattainments stays 0.
  obs::reset_histograms();
  tl::SamplerConfig cfg = config(2.0);
  std::string err;
  ASSERT_TRUE(obs::slo::parse("update_p99<1ms", &cfg.slo, &err)) << err;
  ASSERT_TRUE(tl::start(cfg));
  const uint64_t slow = util::ns_to_cycles(5'000'000);
  for (int i = 0; i < 50; ++i) obs::record_op(obs::OpKind::kUpdate, slow);
  sleep_ms(6);
  sleep_ms(8);  // idle: windows close with no update samples at all
  tl::stop();

  EXPECT_EQ(tl::slo_reattainments(), 0u);
  const std::vector<tl::SloEpisode> eps = tl::slo_episodes();
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_FALSE(eps.front().recovered)
      << "vacuous windows must not close an episode";
  EXPECT_GT(tl::slo_violations_total(), 0u);
  obs::reset_histograms();
}

TEST_F(TimelineTest, ServiceCounterDeltasAnnotateShedAndChaos) {
  // The two v8 counters decompose onto the timeline exactly like the
  // substrate ones: shed_onset / chaos_phase events carry window deltas
  // that sum back to the cumulative counters.
  tl::SamplerConfig cfg = config(1.0);
  ASSERT_TRUE(tl::start(cfg));
  g_shed.fetch_add(7);
  g_chaos_phases.fetch_add(1);
  sleep_ms(4);
  g_shed.fetch_add(5);
  g_chaos_phases.fetch_add(2);
  sleep_ms(4);
  tl::stop();

  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kShedOnset), 12u);
  EXPECT_EQ(tl::annotation_sum(tl::Annotation::kChaosPhase), 3u);
  uint64_t shed_sum = 0, chaos_sum = 0;
  for (const tl::Window& w : tl::windows()) {
    shed_sum += w.delta.sessions_shed;
    chaos_sum += w.delta.chaos_phases;
  }
  EXPECT_EQ(shed_sum, 12u);
  EXPECT_EQ(chaos_sum, 3u);
}

TEST_F(TimelineTest, ZeroOverheadWhenNeverStarted) {
  // The off state the --sample-interval 0 path relies on: no thread, no
  // retained data, interval/start_cycles zero (which is what gates the
  // timeline JSON section and the trace overlay off).
  EXPECT_FALSE(tl::running());
  EXPECT_DOUBLE_EQ(tl::interval_ms(), 0.0);
  EXPECT_EQ(tl::start_cycles(), 0u);
  EXPECT_EQ(tl::windows_total(), 0u);
  EXPECT_TRUE(tl::windows().empty());
  EXPECT_TRUE(tl::annotations().empty());
  EXPECT_EQ(tl::slo_violations_total(), 0u);
  tl::stop();  // stopping a never-started sampler is a no-op, not a crash
}

TEST(SloParse, AcceptsTheDocumentedGrammar) {
  std::vector<obs::slo::Target> targets;
  std::string err;
  ASSERT_TRUE(obs::slo::parse(
      "commit_p99<50us, update_p999<=1ms,register_p50<800ns,collect_p90<2s",
      &targets, &err))
      << err;
  ASSERT_EQ(targets.size(), 4u);
  EXPECT_EQ(targets[0].op, obs::OpKind::kCommit);
  EXPECT_EQ(targets[0].quantile, obs::slo::Quantile::kP99);
  EXPECT_FALSE(targets[0].inclusive);
  EXPECT_DOUBLE_EQ(targets[0].bound_ns, 50000.0);
  EXPECT_EQ(targets[0].spec, "commit_p99<50us");
  EXPECT_EQ(targets[1].op, obs::OpKind::kUpdate);
  EXPECT_EQ(targets[1].quantile, obs::slo::Quantile::kP999);
  EXPECT_TRUE(targets[1].inclusive);
  EXPECT_DOUBLE_EQ(targets[1].bound_ns, 1e6);
  EXPECT_DOUBLE_EQ(targets[2].bound_ns, 800.0);
  EXPECT_DOUBLE_EQ(targets[3].bound_ns, 2e9);
}

TEST(SloParse, RejectsMalformedSpecs) {
  std::vector<obs::slo::Target> targets;
  std::string err;
  for (const char* bad :
       {"", "commit_p99", "commit<50us", "frobnicate_p99<50us",
        "commit_p42<50us", "commit_p99<50parsecs", "commit_p99<-3us",
        "commit_p99<us", "commit_p99<50us,,update_p50<1ms"}) {
    err.clear();
    EXPECT_FALSE(obs::slo::parse(bad, &targets, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
  }
}

TEST(SloParse, ViolatedHonoursInclusiveness) {
  obs::slo::Target strict;
  strict.bound_ns = 100.0;
  strict.inclusive = false;  // "< 100ns": quantile must be strictly below
  EXPECT_FALSE(obs::slo::violated(strict, 99.9));
  EXPECT_TRUE(obs::slo::violated(strict, 100.0));
  obs::slo::Target lax = strict;
  lax.inclusive = true;  // "<= 100ns": the bound itself is fine
  EXPECT_FALSE(obs::slo::violated(lax, 100.0));
  EXPECT_TRUE(obs::slo::violated(lax, 100.1));
}

}  // namespace
