// Log-bucketed histogram: bucketing error bound, quantiles, merge, and the
// per-thread recorder registry behind record_op/aggregate_histogram.
#include "obs/histogram.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.hpp"

namespace {

using namespace dc;
using obs::LogHistogram;

TEST(LogHistogram, SmallValuesAreExact) {
  for (uint64_t v = 0; v < LogHistogram::kSub; ++v) {
    EXPECT_EQ(LogHistogram::index_of(v), v);
    EXPECT_EQ(LogHistogram::bucket_low(static_cast<uint32_t>(v)), v);
    EXPECT_EQ(LogHistogram::bucket_mid(static_cast<uint32_t>(v)), v);
  }
}

TEST(LogHistogram, BucketBoundsContainValue) {
  // The bucket's low edge must not exceed the value, and the midpoint must
  // be within the sub-bucket's relative error (2^-kSubBits plus the
  // half-width used for the midpoint).
  for (uint64_t v : {16ull, 17ull, 100ull, 1000ull, 123456ull, 999999937ull,
                     (1ull << 40) + 12345ull}) {
    const uint32_t idx = LogHistogram::index_of(v);
    const uint64_t low = LogHistogram::bucket_low(idx);
    EXPECT_LE(low, v) << "v=" << v;
    const double rel =
        static_cast<double>(LogHistogram::bucket_mid(idx)) /
        static_cast<double>(v);
    EXPECT_GT(rel, 0.9) << "v=" << v;
    EXPECT_LT(rel, 1.1) << "v=" << v;
  }
}

TEST(LogHistogram, HugeValuesClampIntoLastBucket) {
  const uint32_t idx = LogHistogram::index_of(~0ull);
  EXPECT_LT(idx, LogHistogram::kBuckets);
  EXPECT_EQ(idx, LogHistogram::index_of(uint64_t{1} << 60));
}

TEST(LogHistogram, CountMinMaxMean) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  h.record(10);
  h.record(2);
  h.record(6);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 2u);
  EXPECT_EQ(h.max(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 6.0);
}

TEST(LogHistogram, IntervalSinceIsBucketwiseDelta) {
  // The hot-safe alternative to reset(): snapshot, keep recording, and
  // difference the two monotonic snapshots. The delta must contain exactly
  // the samples recorded in between and nothing from before the snapshot.
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(10);
  const LogHistogram snap = h;  // copy is a consistent-enough snapshot
  for (int i = 0; i < 50; ++i) h.record(10000);
  const LogHistogram d = h.interval_since(snap);
  EXPECT_EQ(d.count(), 50u);
  // All 50 interval samples were 10000; the earlier 10s must not leak in.
  EXPECT_GE(d.percentile(0.5), 1000u);
  EXPECT_GE(d.min(), 1000u);
  // An empty interval is a well-formed empty histogram.
  const LogHistogram none = h.interval_since(h);
  EXPECT_EQ(none.count(), 0u);
  EXPECT_EQ(none.percentile(0.99), 0u);
}

TEST(LogHistogram, PercentilesOnExactBuckets) {
  // Values 0..15 land in identity buckets, so quantiles are exact.
  LogHistogram h;
  for (uint64_t v = 0; v < 16; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.5), 7u);
  EXPECT_EQ(h.percentile(0.25), 3u);
  EXPECT_EQ(h.percentile(1.0), 15u);
  EXPECT_EQ(h.percentile(0.0), 0u);
}

TEST(LogHistogram, PercentileWithinRelativeErrorBound) {
  LogHistogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const double p99 = static_cast<double>(h.percentile(0.99));
  EXPECT_GT(p99, 9900.0 * 0.93);
  EXPECT_LT(p99, 9900.0 * 1.07);
  EXPECT_EQ(h.percentile(1.0), 10000u);
}

TEST(LogHistogram, MergeCombines) {
  LogHistogram a;
  LogHistogram b;
  a.record(5);
  a.record(100);
  b.record(1);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.max(), 0u);
}

TEST(OpHistograms, RecordAggregatesAcrossThreads) {
  obs::reset_histograms();
  obs::record_op(obs::OpKind::kRegister, 100);
  std::thread t([] {
    obs::record_op(obs::OpKind::kRegister, 200);
    obs::record_op(obs::OpKind::kCollect, 300);
  });
  t.join();
  // Exited threads' recorders are retained, like htm::stats blocks.
  const LogHistogram reg = obs::aggregate_histogram(obs::OpKind::kRegister);
  EXPECT_EQ(reg.count(), 2u);
  EXPECT_EQ(reg.max(), 200u);
  EXPECT_EQ(obs::aggregate_histogram(obs::OpKind::kCollect).count(), 1u);
  EXPECT_EQ(obs::aggregate_histogram(obs::OpKind::kUpdate).count(), 0u);
  obs::reset_histograms();
  EXPECT_EQ(obs::aggregate_histogram(obs::OpKind::kRegister).count(), 0u);
}

TEST(OpHistograms, ScopedTimerHonoursRuntimeSwitch) {
  obs::reset_histograms();
  obs::set_timing(false);
  { obs::ScopedOpTimer off(obs::OpKind::kDeRegister); }
  EXPECT_EQ(obs::aggregate_histogram(obs::OpKind::kDeRegister).count(), 0u);
  obs::set_timing(true);
  { obs::ScopedOpTimer on(obs::OpKind::kDeRegister); }
  obs::set_timing(false);
  EXPECT_EQ(obs::aggregate_histogram(obs::OpKind::kDeRegister).count(), 1u);
  obs::reset_histograms();
}

}  // namespace
