// Conflict-attribution table: context registry, per-orec counting with
// per-context split, top-K ordering, and sampling with weight scaling.
#include "obs/conflict_map.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace dc;

TEST(ConflictMap, ContextRegistryIsIdempotent) {
  const uint8_t a = obs::register_context("algo-a");
  const uint8_t b = obs::register_context("algo-b");
  EXPECT_NE(a, 0);  // 0 is reserved for "other"
  EXPECT_NE(a, b);
  EXPECT_EQ(obs::register_context("algo-a"), a);
  EXPECT_EQ(obs::context_name(a), "algo-a");
  EXPECT_EQ(obs::context_name(0), "other");
  EXPECT_EQ(obs::context_name(255), "other");
}

TEST(ConflictMap, RecordsAttributedCounts) {
  obs::reset_conflicts();
  obs::set_conflict_sample_shift(0);
  const uint8_t ctx = obs::register_context("algo-a");
  obs::set_thread_context(ctx);
  for (int i = 0; i < 5; ++i) obs::record_conflict(42);
  obs::set_thread_context(0);
  for (int i = 0; i < 2; ++i) obs::record_conflict(7);
  const auto top = obs::top_conflicts(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].orec_index, 42u);  // hottest first
  EXPECT_EQ(top[0].count, 5u);
  EXPECT_EQ(top[0].by_context[ctx], 5u);
  EXPECT_EQ(top[0].by_context[0], 0u);
  EXPECT_EQ(top[1].orec_index, 7u);
  EXPECT_EQ(top[1].by_context[0], 2u);
  EXPECT_EQ(obs::conflicts_recorded(), 7u);
  EXPECT_EQ(obs::conflicts_dropped(), 0u);
  // top_conflicts(k) truncates to the k hottest.
  EXPECT_EQ(obs::top_conflicts(1).size(), 1u);
  obs::reset_conflicts();
  EXPECT_EQ(obs::top_conflicts(10).size(), 0u);
  EXPECT_EQ(obs::conflicts_recorded(), 0u);
}

TEST(ConflictMap, ThreadContextIsThreadLocal) {
  const uint8_t ctx = obs::register_context("algo-b");
  obs::set_thread_context(ctx);
  std::thread t([] { EXPECT_EQ(obs::thread_context(), 0); });
  t.join();
  EXPECT_EQ(obs::thread_context(), ctx);
  obs::set_thread_context(0);
}

TEST(ConflictMap, SamplingScalesCountsBackUp) {
  obs::reset_conflicts();
  obs::set_conflict_sample_shift(2);  // keep every 4th, weight 4
  // A fresh thread starts its sample tick at zero, so exactly 2 of 8 calls
  // are kept, each weighted 4.
  std::thread t([] {
    obs::set_thread_context(0);
    for (int i = 0; i < 8; ++i) obs::record_conflict(11);
  });
  t.join();
  obs::set_conflict_sample_shift(0);
  const auto top = obs::top_conflicts(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].orec_index, 11u);
  EXPECT_EQ(top[0].count, 8u);  // 2 kept * weight 4
  EXPECT_EQ(obs::conflicts_recorded(), 8u);
  obs::reset_conflicts();
}

TEST(ConflictMap, ConcurrentRecordingLosesNothingUnsampled) {
  obs::reset_conflicts();
  obs::set_conflict_sample_shift(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> team;
  for (int t = 0; t < kThreads; ++t) {
    team.emplace_back([t] {
      obs::set_thread_context(0);
      for (int i = 0; i < kPerThread; ++i) {
        obs::record_conflict(static_cast<uint64_t>(t));
      }
    });
  }
  for (auto& t : team) t.join();
  EXPECT_EQ(obs::conflicts_recorded() + obs::conflicts_dropped(),
            static_cast<uint64_t>(kThreads * kPerThread));
  uint64_t sum = 0;
  for (const auto& e : obs::top_conflicts(kThreads)) sum += e.count;
  EXPECT_EQ(sum, obs::conflicts_recorded());
  obs::reset_conflicts();
}

}  // namespace
