// Event-trace ring buffers: retention, wrap-around, cross-thread merge,
// and the DC_TRACE/runtime gating of the emission wrappers.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "obs/obs.hpp"
#include "util/thread_id.hpp"

namespace {

using namespace dc;

// Events emitted by the calling thread, oldest first (the snapshot also
// contains rings left behind by other tests' threads).
std::vector<obs::TraceEvent> my_events() {
  std::vector<obs::TraceEvent> mine;
  const uint16_t me = static_cast<uint16_t>(util::thread_id());
  for (const obs::TraceEvent& e : obs::snapshot_events()) {
    if (e.tid == me) mine.push_back(e);
  }
  return mine;
}

TEST(Trace, EmitRecordsPayloadAndTid) {
  obs::clear_trace();
  obs::detail::emit(obs::EventKind::kTxnCommit, 0, /*a=*/7, /*b=*/3,
                    /*c=*/2);
  obs::detail::emit(obs::EventKind::kTxnAbort, /*code=*/1, 5, 0, 4);
  const auto mine = my_events();
  ASSERT_EQ(mine.size(), 2u);
  EXPECT_EQ(mine[0].kind, obs::EventKind::kTxnCommit);
  EXPECT_EQ(mine[0].a, 7u);
  EXPECT_EQ(mine[0].b, 3u);
  EXPECT_EQ(mine[0].c, 2u);
  EXPECT_EQ(mine[1].kind, obs::EventKind::kTxnAbort);
  EXPECT_EQ(mine[1].code, 1u);
  EXPECT_LE(mine[0].tsc, mine[1].tsc);
  EXPECT_GE(obs::events_emitted(), 2u);
}

TEST(Trace, RingKeepsMostRecentWindow) {
  obs::clear_trace();
  const uint32_t extra = 100;
  for (uint32_t i = 0; i < obs::kRingSize + extra; ++i) {
    obs::detail::emit(obs::EventKind::kPoolAlloc, 0, i, 0, 0);
  }
  const auto mine = my_events();
  ASSERT_EQ(mine.size(), obs::kRingSize);
  // The oldest retained event is the one emitted `kRingSize` from the end.
  EXPECT_EQ(mine.front().a, extra);
  EXPECT_EQ(mine.back().a, obs::kRingSize + extra - 1);
  EXPECT_GE(obs::events_emitted(), obs::kRingSize + extra);
}

TEST(Trace, ClearDiscardsEverything) {
  obs::detail::emit(obs::EventKind::kTleFallback, 0, 1, 0, 0);
  obs::clear_trace();
  EXPECT_EQ(obs::snapshot_events().size(), 0u);
  EXPECT_EQ(obs::events_emitted(), 0u);
}

TEST(Trace, SnapshotMergesThreadsByTimestamp) {
  obs::clear_trace();
  std::thread t1([] {
    for (int i = 0; i < 50; ++i) {
      obs::detail::emit(obs::EventKind::kPoolAlloc, 0, 16, 0, 0);
    }
  });
  t1.join();
  std::thread t2([] {
    for (int i = 0; i < 50; ++i) {
      obs::detail::emit(obs::EventKind::kPoolRecycle, 0, 16, 0, 0);
    }
  });
  t2.join();
  const auto all = obs::snapshot_events();
  ASSERT_EQ(all.size(), 100u);
  // Exited threads' rings are retained; the merge is globally
  // timestamp-ordered.
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LE(all[i - 1].tsc, all[i].tsc);
  }
  bool saw_alloc = false;
  bool saw_recycle = false;
  for (const auto& e : all) {
    saw_alloc |= e.kind == obs::EventKind::kPoolAlloc;
    saw_recycle |= e.kind == obs::EventKind::kPoolRecycle;
  }
  EXPECT_TRUE(saw_alloc);
  EXPECT_TRUE(saw_recycle);
}

// The wrappers hold both gates: with the runtime switch closed they never
// emit; with it open they emit exactly when the build compiled the hooks in
// (kTraceCompiled), so this test is meaningful in both CI legs.
TEST(Trace, WrappersRespectBothGates) {
  obs::clear_trace();
  obs::set_tracing(false);
  obs::trace_txn_begin(false);
  obs::trace_txn_commit(1, 2, 3);
  EXPECT_EQ(my_events().size(), 0u);

  obs::set_tracing(true);
  obs::trace_txn_begin(true);
  obs::trace_txn_abort(/*abort_code=*/2, 8, 4, 1);
  obs::set_tracing(false);
  const auto mine = my_events();
  if (obs::kTraceCompiled) {
    ASSERT_EQ(mine.size(), 2u);
    EXPECT_EQ(mine[0].kind, obs::EventKind::kTxnBegin);
    EXPECT_EQ(mine[0].a, 1u);  // lock-mode flag
    EXPECT_EQ(mine[1].kind, obs::EventKind::kTxnAbort);
    EXPECT_EQ(mine[1].code, 2u);  // overflow
  } else {
    EXPECT_EQ(mine.size(), 0u);
  }
}

TEST(Trace, RuntimeSwitchesRoundTrip) {
  obs::set_all(true);
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_TRUE(obs::timing_enabled());
  EXPECT_TRUE(obs::conflicts_enabled());
  obs::set_all(false);
  EXPECT_FALSE(obs::tracing_enabled());
  EXPECT_FALSE(obs::timing_enabled());
  EXPECT_FALSE(obs::conflicts_enabled());
}

}  // namespace
