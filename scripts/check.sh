#!/usr/bin/env bash
# Standard verification pass (see README "Testing"):
#   1. tier-1: default build + full ctest suite
#   2. ThreadSanitizer pass of the HTM substrate and Collect tests
#      (-DDC_SANITIZE=thread)
#   3. AddressSanitizer pass of the HTM, memory, and obs tests
#      (-DDC_SANITIZE=address; leak detection is off because the pool and
#      the stats/trace registries intentionally never free — see
#      src/htm/stats.hpp for the retention contract)
#   4. (--fault) fault-injection smoke: reruns the robustness suite and the
#      nondeterministic collect stress tests with DC_FAULT=0.1, i.e. 10% of
#      transaction attempts killed by Rock-style spurious aborts. Only
#      suites that assert invariants (not exact abort counts) are eligible.
#   5. (--crash) thread-death smoke: reruns the robustness suite with
#      DC_CRASH exported (scripted + seeded kills of opted-in victim
#      threads, including deaths while holding the TLE lock), then runs
#      bench_crash_recovery twice — injected, validated with
#      --expect-crashes, and clean at --crash-rate 0, where the validator
#      enforces the zero-overhead guard (all crash counters exactly zero).
#   6. (--service) open-loop service smoke: runs bench_service three ways —
#      a sustainable-rate clean run (exit 0, zero sheds), an over-rate run
#      against a tiny queue (must shed, still exit 0 — shedding is the
#      designed overload response, never an error), and a chaos run
#      (fault storm + worker kills + rate spike) against an unmeetable SLO
#      that must exit 3 (violated) while the report still validates with
#      finite recovery bookkeeping. Every report goes through
#      validate_report.py --schema 9 with the matching --expect-* flags,
#      which re-prove the session conservation laws offline.
#   7. (--mem) memory-pressure smoke: runs bench_service three ways — an
#      unbounded clean run where the validator's dormancy guard proves every
#      memory-pressure counter stayed exactly zero, a seeded
#      allocation-fault run (--alloc-fault-rate) whose denials must surface
#      as counted per-session OOM outcomes (--expect-alloc-faults), and a
#      bounded run squeezed mid-flight by bench/chaos_mem.txt that must shed
#      on the pool watermark, re-attain its SLO with a finite MTTR, and
#      close the pressure episode (--expect-mem-squeeze). All exit 0: memory
#      exhaustion is a recoverable, counted condition, never a crash.
#   8. (--sched) deterministic-schedule stage: runs the scheduled suite
#      (exploration batteries, exact-race scripts, the seed sweep, replay
#      of the tests/schedules regression corpus) honoring DC_SCHED_SEEDS,
#      then builds build-nosched/ with -DDC_SCHED=OFF and runs the
#      substrate suite there, proving the checkpoint hooks are zero-cost
#      when compiled out.
#
# Usage: scripts/check.sh [--skip-tsan] [--skip-asan] [--fault] [--crash]
#                         [--service] [--mem] [--sched] [--clock gv1|gv5]
#                         [--validate exact|sig]
#
# --clock pins the global-clock policy (DC_CLOCK) for every stage, so one
# invocation verifies the whole suite under one policy; CI runs both.
# --validate pins the conflict-validation backend (DC_VALIDATE) the same
# way: `--validate sig` runs every stage with Bloom-signature validation
# admitting commits, which is how the backend's zero-false-negative claim
# gets exercised against the entire suite, not just its own tests. CI
# crosses it with both clock policies (the ring stamps entries with
# whatever the active clock produced).
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_tsan=0
skip_asan=0
fault=0
crash=0
service=0
mem=0
sched=0
clock=""
validate=""
prev=""
for arg in "$@"; do
  if [[ "$prev" == "--clock" ]]; then
    clock="$arg"
    prev=""
    continue
  fi
  if [[ "$prev" == "--validate" ]]; then
    validate="$arg"
    prev=""
    continue
  fi
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    --skip-asan) skip_asan=1 ;;
    --fault) fault=1 ;;
    --crash) crash=1 ;;
    --service) service=1 ;;
    --mem) mem=1 ;;
    --sched) sched=1 ;;
    --clock) prev="--clock" ;;
    --validate) prev="--validate" ;;
    *) echo "unknown option: $arg (supported: --skip-tsan --skip-asan --fault --crash --service --mem --sched --clock gv1|gv5 --validate exact|sig)" >&2; exit 2 ;;
  esac
done
if [[ -n "$prev" ]]; then
  echo "missing value for $prev" >&2
  exit 2
fi
if [[ -n "$clock" ]]; then
  case "$clock" in
    gv1|gv5) export DC_CLOCK="$clock"; echo "== clock policy pinned: DC_CLOCK=$clock ==" ;;
    *) echo "unknown clock policy: $clock (gv1|gv5)" >&2; exit 2 ;;
  esac
fi
if [[ -n "$validate" ]]; then
  case "$validate" in
    exact|sig) export DC_VALIDATE="$validate"; echo "== validation backend pinned: DC_VALIDATE=$validate ==" ;;
    *) echo "unknown validation backend: $validate (exact|sig)" >&2; exit 2 ;;
  esac
fi

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [[ "$skip_tsan" == 1 ]]; then
  echo "== TSan pass skipped (--skip-tsan) =="
else
  echo "== ThreadSanitizer pass: tests/htm + tests/collect =="
  cmake -B build-tsan -S . -DDC_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target htm_test collect_test
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/htm_test
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/collect_test
fi

if [[ "$skip_asan" == 1 ]]; then
  echo "== ASan pass skipped (--skip-asan) =="
else
  echo "== AddressSanitizer pass: tests/htm + tests/memory + tests/obs =="
  cmake -B build-asan -S . -DDC_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target htm_test memory_test obs_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/htm_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/memory_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/obs_test
fi

if [[ "$fault" == 1 ]]; then
  echo "== fault-injection smoke: DC_FAULT=0.1 (10% spurious aborts) =="
  # robust_test is built for this (it also exercises rate 1.0 internally);
  # the collect fuzz/stress filters assert model equivalence and liveness
  # invariants, so they must hold under any interleaving of spurious aborts.
  DC_FAULT=0.1 ./build/tests/robust_test
  DC_FAULT=0.1 ./build/tests/collect_test \
    --gtest_filter='*CollectModelFuzz*:*CollectYieldStress*'
fi

if [[ "$crash" == 1 ]]; then
  echo "== thread-death smoke: DC_CRASH=0.005 (crash-crossed robustness) =="
  # Rate kills land only on opted-in victim threads, so the fault tier runs
  # unchanged alongside; the crash tier additionally scripts one death while
  # holding the TLE fallback lock per run.
  DC_CRASH=0.005 ./build/tests/robust_test
  echo "== bench_crash_recovery: injected run must trip every counter =="
  ./build/bench/bench_crash_recovery \
    --duration-ms 50 --repeats 2 --max-threads 4 \
    --crash-rate 0.05 --json crash-report.json
  python3 scripts/validate_report.py crash-report.json --expect-crashes
  echo "== bench_crash_recovery: clean run must keep every counter at 0 =="
  ./build/bench/bench_crash_recovery \
    --duration-ms 50 --repeats 2 --max-threads 4 \
    --crash-rate 0 --json crash-clean-report.json
  python3 scripts/validate_report.py crash-clean-report.json
fi

if [[ "$service" == 1 ]]; then
  echo "== service smoke: sustainable rate must hold with zero sheds =="
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 500 \
    --sample-interval 25 --json service-clean-report.json
  python3 scripts/validate_report.py service-clean-report.json \
    --schema 9 --expect-service
  python3 - service-clean-report.json <<'EOF'
import json, sys
svc = json.load(open(sys.argv[1]))["service"]
assert svc["sessions_shed"] == 0, f"clean run shed {svc['sessions_shed']}"
EOF
  echo "== service smoke: over-rate run must shed, not block or fail =="
  ./build/bench/bench_service \
    --arrival-rate 50000 --workers 2 --queue-capacity 16 --duration-ms 500 \
    --json service-shed-report.json
  python3 scripts/validate_report.py service-shed-report.json \
    --schema 9 --expect-service --expect-shed
  echo "== service smoke: chaos run vs an unmeetable SLO must exit 3 =="
  # update_p999<1us is unattainable (a software-TM update alone costs more):
  # every window violates, the bench reports the breach via exit 3, and the
  # orchestrated chaos (storm + kills + spike) must still leave a validating
  # report — conservation intact, every death respawned, phases annotated.
  rc=0
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 2000 \
    --sample-interval 25 --slo "update_p999<1us" \
    --chaos bench/chaos_service.txt --json service-chaos-report.json || rc=$?
  if [[ "$rc" != 3 ]]; then
    echo "expected exit 3 (SLO violated) from the chaos run, got $rc" >&2
    exit 1
  fi
  python3 scripts/validate_report.py service-chaos-report.json \
    --schema 9 --expect-service
  python3 - service-chaos-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
tot = doc["timeline"]["annotation_totals"]
assert tot["chaos_phase"] >= 1, "no chaos_phase annotation on the timeline"
svc = doc["service"]
assert svc["worker_deaths"] > 0 and \
    svc["worker_respawns"] == svc["worker_deaths"], \
    f"kill recovery broken: {svc['worker_deaths']} deaths, " \
    f"{svc['worker_respawns']} respawns"
EOF
  echo "== service smoke: chaos run with headroom SLO must recover (exit 0) =="
  # Same chaos script, but an SLO the service can actually re-attain between
  # phases; --slo-observe keeps baseline scheduling noise from failing the
  # run. --expect-chaos then requires a finite MTTR for every applied phase
  # — the "survived the storm and the kills" acceptance check.
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 2000 \
    --sample-interval 25 --slo "update_p999<2ms" --slo-observe \
    --chaos bench/chaos_service.txt --json service-recovery-report.json
  python3 scripts/validate_report.py service-recovery-report.json \
    --schema 9 --expect-service --expect-chaos
fi

if [[ "$mem" == 1 ]]; then
  echo "== mem smoke: unbounded clean run must keep every mem counter at 0 =="
  # No bound, no injection: the validator's v9 dormancy guard fails the leg
  # if any failure-path counter (alloc_failures, injected faults, pressure
  # onsets/exits, alloc-failed aborts) moved at all.
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 500 \
    --sample-interval 25 --json mem-clean-report.json
  python3 scripts/validate_report.py mem-clean-report.json \
    --schema 9 --expect-service
  python3 - mem-clean-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
svc = doc["service"]
assert svc["sessions_shed_mem"] == 0, \
    f"clean run shed {svc['sessions_shed_mem']} on the watermark"
assert svc["sessions_oom"] == 0, f"clean run counted {svc['sessions_oom']} oom"
EOF
  echo "== mem smoke: injected denials must surface as counted oom sessions =="
  # Seeded allocation-fault injection, no capacity bound: every denial lands
  # on one session's Register, is counted as that session's OOM outcome, and
  # the run still exits 0 — exhaustion is an outcome, not a crash.
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 500 \
    --alloc-fault-rate 0.05 \
    --sample-interval 25 --json mem-fault-report.json
  python3 scripts/validate_report.py mem-fault-report.json \
    --schema 9 --expect-service --expect-alloc-faults
  python3 - mem-fault-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
svc, mem = doc["service"], doc["mem"]
assert svc["sessions_oom"] > 0, "injected denials but no oom session counted"
assert svc["sessions_completed"] > 0, "nothing survived rate-0.05 injection"
assert mem["alloc_faults_injected"] == mem["alloc_failures"], \
    "unbounded run: every failure must be an injected one " \
    f"({mem['alloc_faults_injected']} != {mem['alloc_failures']})"
EOF
  echo "== mem smoke: mid-run squeeze must shed, recover, and close the episode =="
  # Bounded pool pre-warmed near the cap, then bench/chaos_mem.txt squeezes
  # the bound below the mapped footprint mid-run: admission sheds on the
  # watermark (shed_mem), the SLO re-attains with a finite MTTR after the
  # release, and the pressure episode opens and closes exactly.
  ./build/bench/bench_service \
    --arrival-rate 1000 --workers 2 --duration-ms 1500 --mem-limit 512k \
    --chaos bench/chaos_mem.txt \
    --sample-interval 25 --slo "update_p999<2ms" --slo-observe \
    --json mem-squeeze-report.json
  python3 scripts/validate_report.py mem-squeeze-report.json \
    --schema 9 --expect-service --expect-mem-squeeze
  python3 - mem-squeeze-report.json <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
svc = doc["service"]
assert svc["sessions_shed_mem"] > 0, "squeeze window shed nothing"
assert svc["sessions_completed"] > 0, "nothing completed around the squeeze"
squeezes = [p for p in svc["phases"] if p["kind"] == "mem-squeeze"]
assert squeezes and all(p["onset_ms"] >= 0 for p in squeezes), \
    "mem-squeeze phase never applied"
assert all(p["mttr_ms"] >= 0 for p in squeezes), \
    f"SLO never re-attained after the squeeze ({squeezes})"
EOF
fi

if [[ "$sched" == 1 ]]; then
  echo "== deterministic-schedule stage: sched_test (DC_SCHED_SEEDS=${DC_SCHED_SEEDS:-default}) =="
  # The scheduled suite: exploration batteries over the TLE steal/release
  # and lease stamp/reap races, exact-race callback scripts, the seed
  # sweep (width from DC_SCHED_SEEDS), and step-for-step replay of the
  # checked-in tests/schedules corpus.
  ./build/tests/sched_test
  echo "== zero-cost check: -DDC_SCHED=OFF build + substrate suite =="
  # With the gate off, sched::checkpoint must compile to nothing: the
  # substrate suite has to pass in a build that has no scheduler at all.
  cmake -B build-nosched -S . -DDC_SCHED=OFF
  cmake --build build-nosched -j "$jobs" --target htm_test
  ./build-nosched/tests/htm_test
fi

echo "== all checks passed =="
