#!/usr/bin/env bash
# Standard verification pass (see README "Testing"):
#   1. tier-1: default build + full ctest suite
#   2. ThreadSanitizer pass of the HTM substrate and Collect tests
#      (-DDC_SANITIZE=thread)
#   3. AddressSanitizer pass of the HTM, memory, and obs tests
#      (-DDC_SANITIZE=address; leak detection is off because the pool and
#      the stats/trace registries intentionally never free — see
#      src/htm/stats.hpp for the retention contract)
#
# Usage: scripts/check.sh [--skip-tsan] [--skip-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_tsan=0
skip_asan=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    --skip-asan) skip_asan=1 ;;
    *) echo "unknown option: $arg (supported: --skip-tsan --skip-asan)" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [[ "$skip_tsan" == 1 ]]; then
  echo "== TSan pass skipped (--skip-tsan) =="
else
  echo "== ThreadSanitizer pass: tests/htm + tests/collect =="
  cmake -B build-tsan -S . -DDC_SANITIZE=thread
  cmake --build build-tsan -j "$jobs" --target htm_test collect_test
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/htm_test
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/collect_test
fi

if [[ "$skip_asan" == 1 ]]; then
  echo "== ASan pass skipped (--skip-asan) =="
else
  echo "== AddressSanitizer pass: tests/htm + tests/memory + tests/obs =="
  cmake -B build-asan -S . -DDC_SANITIZE=address
  cmake --build build-asan -j "$jobs" --target htm_test memory_test obs_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/htm_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/memory_test
  ASAN_OPTIONS="detect_leaks=0" ./build-asan/tests/obs_test
fi

echo "== all checks passed =="
