#!/usr/bin/env bash
# Standard verification pass (see README "Testing"):
#   1. tier-1: default build + full ctest suite
#   2. ThreadSanitizer pass of the HTM substrate and Collect tests
#      (-DDC_SANITIZE=thread)
#
# Usage: scripts/check.sh [--skip-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)
skip_tsan=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) skip_tsan=1 ;;
    *) echo "unknown option: $arg (supported: --skip-tsan)" >&2; exit 2 ;;
  esac
done

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "$jobs"
(cd build && ctest --output-on-failure -j "$jobs")

if [[ "$skip_tsan" == 1 ]]; then
  echo "== TSan pass skipped (--skip-tsan) =="
  exit 0
fi

echo "== ThreadSanitizer pass: tests/htm + tests/collect =="
cmake -B build-tsan -S . -DDC_SANITIZE=thread
cmake --build build-tsan -j "$jobs" --target htm_test collect_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/htm_test
TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" ./build-tsan/tests/collect_test

echo "== all checks passed =="
