#!/usr/bin/env python3
"""Validate a benchmark --json report (schema_version 4 through 9) and,
optionally, a Chrome trace-event file produced by --trace.

Usage: scripts/validate_report.py REPORT.json [TRACE.json] [--expect-events]
           [--expect-faults] [--expect-crashes] [--expect-storms]
           [--expect-clean-timeline] [--expect-service] [--expect-shed]
           [--expect-chaos] [--expect-alloc-faults] [--expect-mem-squeeze]
           [--schema N]

The C++ unit tests (tests/obs/export_schema_test.cpp) validate the same
schemas in-process; this script is the out-of-process check CI runs against
a real benchmark binary's output, so a packaging or flushing bug that the
in-process test cannot see still fails the pipeline. --expect-events makes
an empty trace an error (used by the DC_TRACE=ON smoke leg);
--expect-faults makes htm.faults_injected == 0 an error (used by the fault
smoke leg, which runs with --fault-rate > 0). Without --expect-faults and
with options.fault_rate == 0 the validator enforces the converse: a run
with injection off must report zero injected faults and zero spurious
aborts. --expect-crashes (v5 reports only) makes all three of
htm.crashes_injected / htm.lock_recoveries / htm.orphans_reaped == 0 an
error (the crash smoke leg, which runs with --crash-rate > 0); without it
and with options.crash_rate == 0 all three counters must be exactly zero —
the zero-overhead guard that proves the injector is fully dormant on clean
runs. v6 reports carry options.validation and the signature-validation
counters htm.sig_validations / htm.sig_false_aborts /
htm.sig_ring_overflows, which must all be exactly zero when validation is
"exact" — the same dormancy guard applied to the signature backend.

v7 reports carry options.sample_interval_ms / options.slo and the split
trace.requested / trace.enabled booleans. When sample_interval_ms > 0 a
"timeline" section is REQUIRED and fully checked: window shape and quantile
ordering, the annotation-kind whitelist, and — whenever nothing was dropped
— exact conservation (baseline + window deltas telescope to the htm
counters; per-kind annotation totals equal the matching cumulative counter
minus its baseline). With sampling off the section must be ABSENT — the
zero-overhead guard for the sampler. --expect-storms additionally requires
at least one storm_onset annotation (the metrics smoke leg, which runs
fault-injected); --expect-clean-timeline requires a timeline with zero
annotations of every kind (the clean smoke leg). --schema N pins the exact
schema_version (CI legs assert the binary they just built emits the
current version, not merely something in the accepted range).

v8 reports add options.slo_observe, the service-level timeline counters
sessions_shed / chaos_phases (plus the shed_onset / chaos_phase annotation
kinds), the SLO episode ledger (timeline.slo.reattainments and
timeline.slo.episodes), and — for bench_service ONLY — a top-level
"service" section. The validator re-proves the service harness's
conservation laws offline: sessions_generated == sessions_accepted +
sessions_shed and sessions_accepted == sessions_completed +
sessions_killed (shedding is never silent, admitted sessions never
vanish). The section must be present iff bench == "service"; on every
other v8 report the timeline's service counters and their annotation
kinds must be exactly zero — and when the section IS present they must
telescope to the service totals, the same both-directions dormancy guard
the fault/crash/signature layers get. --expect-service requires the
section with nonzero traffic; --expect-shed requires sessions_shed > 0
(the overload leg); --expect-chaos requires at least one fault-storm AND
one kill phase survived with every worker death recovered (the chaos
leg).

v9 reports add the memory tier: options.mem_limit / options.alloc_fault_rate,
the "alloc-failed" abort code and retry cause, nine memory counters in every
timeline counter block, the mem_pressure_onset / mem_pressure_exit /
mem_shed_onset / alloc_fault_burst annotation kinds, an always-present "mem"
section, and the service section's sessions_shed_mem / sessions_oom with the
widened conservation laws (generated == accepted + shed + shed_mem;
accepted == completed + killed + oom). The mem section is conservation-
checked offline: the per-thread ledgers sum to the global counters (two
independently maintained ledgers a double free or stranded-cache miscount
would split), allocations - deallocations == live_blocks, reaped <=
stranded, injected faults <= failures. The dormancy guard runs both ways:
with no capacity bound, no allocation-fault injection, no crash injection
and no mem-squeeze chaos phase, every failure/pressure/stranding counter
must be exactly zero and no mem_pressure_* annotation may appear;
--expect-alloc-faults requires injected faults > 0 (the injected leg) and
--expect-mem-squeeze requires an applied mem-squeeze phase with at least
one pressure onset AND a matching exit (the squeeze-recovery leg).
"""
import json
import sys

SCHEMA_VERSION_MIN = 4
SCHEMA_VERSION_MAX = 9

OPS = ("register", "update", "deregister", "collect", "commit")
OPS_V6 = OPS + ("validate",)
SIG_KEYS = ("sig_validations", "sig_false_aborts", "sig_ring_overflows")
ABORT_CODES = ("none", "conflict", "overflow", "explicit", "illegal-access",
               "interrupt", "tlb-miss", "save-restore")
ABORT_CODES_V9 = ABORT_CODES + ("alloc-failed",)
SPURIOUS_CODES = ("interrupt", "tlb-miss", "save-restore")

# Timeline vocabulary (obs/timeline.hpp). Annotation kinds map 1:1 onto the
# cumulative counter their per-window values decompose. v8 widens both with
# the service pair; those two counters live in the service section (or are
# implicitly zero when the report is not from bench_service), not in htm.
# v9 widens both again with the memory tier, whose cumulative references
# live in the mem section (sessions_shed_mem in the service section).
COUNTER_KEYS = ("commits", "aborts", "lock_fallbacks", "tle_entries",
                "faults_injected", "crashes_injected", "storm_entries",
                "storm_exits", "lock_recoveries", "orphans_reaped",
                "sig_validations", "sig_false_aborts", "sig_ring_overflows")
SERVICE_COUNTER_KEYS = ("sessions_shed", "chaos_phases")
MEM_COUNTER_KEYS = ("pool_allocations", "pool_deallocations", "pool_os_bytes",
                    "alloc_failures", "alloc_faults_injected",
                    "pool_caches_reaped", "mem_pressure_onsets",
                    "mem_pressure_exits", "sessions_shed_mem")
# timeline counter key -> mem section key it telescopes to.
MEM_COUNTER_REF = {
    "pool_allocations": "allocations",
    "pool_deallocations": "deallocations",
    "pool_os_bytes": "os_bytes",
    "alloc_failures": "alloc_failures",
    "alloc_faults_injected": "alloc_faults_injected",
    "pool_caches_reaped": "cache_blocks_reaped",
    "mem_pressure_onsets": "mem_pressure_onsets",
    "mem_pressure_exits": "mem_pressure_exits",
}
ANNOTATION_COUNTER = {
    "storm_onset": "storm_entries",
    "storm_exit": "storm_exits",
    "lock_recovery": "lock_recoveries",
    "orphan_reap": "orphans_reaped",
    "sig_saturation": "sig_ring_overflows",
    "thread_crash": "crashes_injected",
}
SERVICE_ANNOTATION_COUNTER = {
    "shed_onset": "sessions_shed",
    "chaos_phase": "chaos_phases",
}
MEM_ANNOTATION_COUNTER = {
    "mem_pressure_onset": "mem_pressure_onsets",
    "mem_pressure_exit": "mem_pressure_exits",
    "mem_shed_onset": "sessions_shed_mem",
    "alloc_fault_burst": "alloc_failures",
}
QUANTILE_KEYS = ("p50_ns", "p90_ns", "p99_ns", "p999_ns")
SLO_QUANTILES = ("p50", "p90", "p99", "p999")
CHAOS_KINDS = ("fault-storm", "kill", "rate-spike")
CHAOS_KINDS_V9 = CHAOS_KINDS + ("mem-squeeze",)


def abort_codes(version):
    return ABORT_CODES_V9 if version >= 9 else ABORT_CODES


def chaos_kinds(version):
    return CHAOS_KINDS_V9 if version >= 9 else CHAOS_KINDS


def counter_keys(version):
    keys = COUNTER_KEYS
    if version >= 8:
        keys = keys + SERVICE_COUNTER_KEYS
    if version >= 9:
        keys = keys + MEM_COUNTER_KEYS
    return keys


def annotation_counter(version):
    m = dict(ANNOTATION_COUNTER)
    if version >= 8:
        m.update(SERVICE_ANNOTATION_COUNTER)
    if version >= 9:
        m.update(MEM_ANNOTATION_COUNTER)
    return m


def fail(msg):
    print(f"validate_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def validate_timeline(doc, version, expect_storms, expect_clean):
    """Checks the v7+ timeline section against the report's own counters.

    The section is an exact decomposition, not a sketch: when nothing was
    dropped, baseline + per-window deltas must telescope to the cumulative
    counters, and per-kind annotation totals must equal the matching
    counter minus its baseline (each annotation carries its window's
    delta). Sampling skew is not tolerated because the sampler's final
    tick runs after the workers join (bench::report stops it first).

    v8's service counters (sessions_shed, chaos_phases) have no htm
    counterpart: they telescope to the service section's totals when the
    report carries one, and to exactly zero otherwise — the dormancy
    guard that proves non-service benchmarks never tick them."""
    htm = doc["htm"]
    keys = counter_keys(version)
    ann_counter = annotation_counter(version)
    # The cumulative reference each counter must telescope to.
    ref = {key: htm[key] for key in COUNTER_KEYS}
    if version >= 8:
        svc = doc.get("service")
        ref["sessions_shed"] = svc["sessions_shed"] if svc else 0
        ref["chaos_phases"] = svc["chaos_phases"] if svc else 0
    if version >= 9:
        mem = doc["mem"]
        for tl_key, mem_key in MEM_COUNTER_REF.items():
            ref[tl_key] = mem[mem_key]
        svc = doc.get("service")
        ref["sessions_shed_mem"] = svc["sessions_shed_mem"] if svc else 0
    tl = doc.get("timeline")
    require(isinstance(tl, dict), "timeline must be an object")
    require(isinstance(tl.get("sample_interval_ms"), (int, float)) and
            tl["sample_interval_ms"] > 0, "timeline.sample_interval_ms")
    for key in ("windows_total", "windows_dropped", "events_dropped"):
        require(isinstance(tl.get(key), int), f"timeline.{key}")
    baseline = tl.get("baseline")
    require(isinstance(baseline, dict), "timeline.baseline")
    for key in keys:
        require(isinstance(baseline.get(key), int),
                f"timeline.baseline.{key}")
    windows = tl.get("windows")
    require(isinstance(windows, list) and windows,
            "timeline.windows must be non-empty")
    require(len(windows) ==
            tl["windows_total"] - tl["windows_dropped"],
            "retained window count != windows_total - windows_dropped")
    sums = dict.fromkeys(keys, 0)
    prev_index = None
    prev_end = None
    for w in windows:
        require(isinstance(w.get("i"), int), "window.i")
        for key in ("t_start_ms", "t_end_ms"):
            require(isinstance(w.get(key), (int, float)), f"window.{key}")
        require(w["t_end_ms"] >= w["t_start_ms"], "window time runs backward")
        if prev_index is not None:
            require(w["i"] == prev_index + 1, "window indices not contiguous")
            require(abs(w["t_start_ms"] - prev_end) < 1e-6,
                    "windows do not tile (t_start != previous t_end)")
        prev_index, prev_end = w["i"], w["t_end_ms"]
        for key in keys:
            require(isinstance(w.get(key), int), f"window.{key}")
            sums[key] += w[key]
        ops = w.get("ops")
        require(isinstance(ops, dict), "window.ops")
        for op, entry in ops.items():
            require(op in OPS_V6, f"window.ops has unknown op {op!r}")
            require(isinstance(entry, dict), f"window.ops.{op}")
            require(isinstance(entry.get("count"), int) and
                    entry["count"] > 0,
                    f"window.ops.{op}.count (quiet ops must be omitted)")
            for q in QUANTILE_KEYS:
                require(isinstance(entry.get(q), (int, float)),
                        f"window.ops.{op}.{q}")
            require(entry["p50_ns"] <= entry["p90_ns"] <= entry["p99_ns"]
                    <= entry["p999_ns"],
                    f"window.ops.{op} quantiles out of order")
    if tl["windows_dropped"] == 0:
        for key in keys:
            require(baseline[key] + sums[key] == ref[key],
                    f"timeline windows do not decompose {key}: "
                    f"{baseline[key]} + {sums[key]} != {ref[key]}")
    totals = tl.get("annotation_totals")
    require(isinstance(totals, dict), "timeline.annotation_totals")
    require(set(totals) == set(ann_counter),
            "annotation_totals kinds != the documented whitelist")
    for kind, counter in ann_counter.items():
        require(isinstance(totals[kind], int),
                f"annotation_totals.{kind}")
        require(totals[kind] == ref[counter] - baseline[counter],
                f"annotation_totals.{kind} != {counter} - baseline "
                f"({totals[kind]} != {ref[counter]} - {baseline[counter]})")
    events = tl.get("annotations")
    require(isinstance(events, list), "timeline.annotations")
    event_sums = dict.fromkeys(ann_counter, 0)
    for e in events:
        require(e.get("kind") in ann_counter,
                f"annotation kind {e.get('kind')!r} not in whitelist")
        require(isinstance(e.get("t_ms"), (int, float)), "annotation.t_ms")
        require(isinstance(e.get("window"), int), "annotation.window")
        require(isinstance(e.get("value"), int) and e["value"] > 0,
                "annotation.value must be a positive delta")
        event_sums[e["kind"]] += e["value"]
    if tl["events_dropped"] == 0:
        for kind in ann_counter:
            require(event_sums[kind] == totals[kind],
                    f"annotation event values for {kind} do not sum to "
                    f"annotation_totals ({event_sums[kind]} != "
                    f"{totals[kind]})")
    slo = tl.get("slo")
    require(isinstance(slo, dict), "timeline.slo")
    require(isinstance(slo.get("violations_total"), int),
            "timeline.slo.violations_total")
    targets = slo.get("targets")
    require(isinstance(targets, list), "timeline.slo.targets")
    for t in targets:
        require(isinstance(t.get("spec"), str), "slo target.spec")
        require(t.get("op") in OPS_V6, "slo target.op")
        require(t.get("quantile") in SLO_QUANTILES, "slo target.quantile")
        for key in ("bound_ns", "worst_ns"):
            require(isinstance(t.get(key), (int, float)), f"slo target.{key}")
        for key in ("windows_evaluated", "violations"):
            require(isinstance(t.get(key), int), f"slo target.{key}")
        require(t["violations"] <= t["windows_evaluated"],
                "slo target has more violations than evaluated windows")
    require(sum(t["violations"] for t in targets) ==
            slo["violations_total"],
            "slo per-target violations do not sum to violations_total")
    if version >= 8:
        # The episode ledger: contiguous violation runs and whether each
        # re-attained the SLO. Reattainments must count exactly the
        # recovered episodes — the scalar MTTR feeds on.
        require(isinstance(slo.get("reattainments"), int),
                "timeline.slo.reattainments")
        episodes = slo.get("episodes")
        require(isinstance(episodes, list), "timeline.slo.episodes")
        recovered = 0
        for e in episodes:
            for key in ("start_window", "end_window", "violating_windows"):
                require(isinstance(e.get(key), int), f"episode.{key}")
            for key in ("t_start_ms", "t_end_ms"):
                require(isinstance(e.get(key), (int, float)),
                        f"episode.{key}")
            require(isinstance(e.get("recovered"), bool),
                    "episode.recovered")
            require(e["violating_windows"] >= 1,
                    "episode with zero violating windows")
            require(e["end_window"] >= e["start_window"] and
                    e["t_end_ms"] >= e["t_start_ms"],
                    "episode runs backward")
            recovered += e["recovered"]
        require(recovered == slo["reattainments"],
                f"recovered episodes != slo.reattainments "
                f"({recovered} != {slo['reattainments']})")
        require(not episodes or slo["violations_total"] > 0,
                "episodes present but violations_total == 0")
    if expect_storms:
        require(totals["storm_onset"] > 0,
                "--expect-storms: no storm_onset annotations")
    if expect_clean:
        require(all(v == 0 for v in totals.values()),
                "--expect-clean-timeline: annotations present "
                f"({ {k: v for k, v in totals.items() if v} })")


def validate_service(doc, version, expect_service, expect_shed,
                     expect_chaos):
    """Checks the v8+ service section: harness config, session accounting,
    and per-chaos-phase recovery reports.

    The conservation laws are the section's whole point — an open-loop
    harness that loses track of a session under overload or chaos would
    silently understate latency and overstate availability. All must hold
    exactly, in every run, chaos or not. v9 widens both laws with the
    memory tier: watermark sheds (shed_mem) and mid-flight pool exhaustion
    (oom) are distinct, counted outcomes, never silent drops."""
    svc = doc["service"]
    require(isinstance(svc, dict), "service must be an object")
    for key in ("arrival_rate", "burstiness", "duration_ms"):
        require(isinstance(svc.get(key), (int, float)), f"service.{key}")
    for key in ("workers", "queue_capacity"):
        require(isinstance(svc.get(key), int) and svc[key] > 0,
                f"service.{key}")
    require(isinstance(svc.get("chaos_script"), str), "service.chaos_script")
    counter_names = ["sessions_generated", "sessions_accepted",
                     "sessions_shed", "sessions_completed", "sessions_killed",
                     "requests", "worker_deaths", "worker_respawns",
                     "reap_batches", "chaos_phases"]
    if version >= 9:
        counter_names += ["sessions_shed_mem", "sessions_oom"]
    for key in counter_names:
        require(isinstance(svc.get(key), int), f"service.{key}")
    shed_mem = svc.get("sessions_shed_mem", 0)
    oom = svc.get("sessions_oom", 0)
    require(svc["sessions_generated"] ==
            svc["sessions_accepted"] + svc["sessions_shed"] + shed_mem,
            "service conservation broken: generated != accepted + shed "
            f"+ shed_mem ({svc['sessions_generated']} != "
            f"{svc['sessions_accepted']} + {svc['sessions_shed']} + "
            f"{shed_mem})")
    require(svc["sessions_accepted"] ==
            svc["sessions_completed"] + svc["sessions_killed"] + oom,
            "service conservation broken: accepted != completed + killed "
            f"+ oom ({svc['sessions_accepted']} != "
            f"{svc['sessions_completed']} + {svc['sessions_killed']} + "
            f"{oom})")
    require(svc["sessions_killed"] == svc["worker_deaths"],
            "each worker death must take exactly its in-flight session "
            f"({svc['sessions_killed']} killed, {svc['worker_deaths']} "
            "deaths)")
    require(svc["worker_respawns"] <= svc["worker_deaths"],
            "more respawns than deaths")
    phases = svc.get("phases")
    require(isinstance(phases, list), "service.phases")
    kinds = set()
    applied = 0
    for p in phases:
        require(isinstance(p.get("spec"), str), "phase.spec")
        require(p.get("kind") in chaos_kinds(version),
                f"phase.kind {p.get('kind')!r} not in {chaos_kinds(version)}")
        for key in ("at_ms", "onset_ms", "mttr_ms", "reap_latency_ms"):
            require(isinstance(p.get(key), (int, float)), f"phase.{key}")
        for key in ("shed_during", "orphans_reaped"):
            require(isinstance(p.get(key), int), f"phase.{key}")
        # onset_ms < 0 is the "never applied" sentinel (the run ended
        # before the phase's @<ms>); such a phase can have no recovery.
        if p["onset_ms"] < 0:
            require(p["mttr_ms"] < 0 and p["shed_during"] == 0 and
                    p["orphans_reaped"] == 0,
                    "unapplied phase reports recovery activity")
            continue
        applied += 1
        kinds.add(p["kind"])
        if expect_chaos:
            # The survival criterion: every applied phase must have a
            # finite MTTR — 0 if the SLO never buckled, positive if it
            # buckled and was re-attained. -1 (never re-attained) is a
            # legal report (e.g. an unmeetable-SLO run) but fails the
            # chaos leg, whose whole point is proven recovery.
            require(p["mttr_ms"] >= 0,
                    "--expect-chaos: SLO never re-attained after "
                    f"{p['spec']!r}")
    require(applied == svc["chaos_phases"],
            f"phases with an onset ({applied}) != service.chaos_phases "
            f"({svc['chaos_phases']})")
    if expect_service:
        require(svc["sessions_generated"] > 0,
                "--expect-service: no sessions were generated")
        require(svc["sessions_completed"] > 0,
                "--expect-service: no session ever completed")
    if expect_shed:
        require(svc["sessions_shed"] > 0,
                "--expect-shed: overload run shed nothing")
    if expect_chaos:
        require(svc["chaos_phases"] > 0, "--expect-chaos: no phase applied")
        require("fault-storm" in kinds and "kill" in kinds,
                "--expect-chaos: need at least one fault-storm and one "
                f"kill phase (got {sorted(kinds)})")
        require(svc["worker_deaths"] > 0,
                "--expect-chaos: kill phase but no worker died")
        require(svc["worker_respawns"] == svc["worker_deaths"],
                "--expect-chaos: a dead worker slot was never respawned "
                f"({svc['worker_respawns']} respawns, "
                f"{svc['worker_deaths']} deaths)")
        require(svc["sessions_completed"] > 0,
                "--expect-chaos: the pool never served through the chaos")


def validate_mem(doc, mem_active, crash_active, expect_alloc_faults,
                 expect_mem_squeeze, chaos_squeeze):
    """Checks the v9 mem section: global pool accounting, per-thread
    ledgers, and the conservation laws that tie them together.

    The global counters and the per-thread ledgers are maintained
    independently (one atomic set, one thread-local set); a double free,
    a lost ledger, or a stranded-cache miscount splits them. The offline
    re-proof here is the same discipline the service section gets."""
    mem = doc["mem"]
    require(isinstance(mem, dict), "mem must be an object")
    for key in ("limit_bytes", "os_bytes", "live_bytes", "live_blocks",
                "allocations", "deallocations", "alloc_failures",
                "alloc_faults_injected", "cache_blocks_stranded",
                "cache_blocks_reaped", "mem_pressure_onsets",
                "mem_pressure_exits"):
        require(isinstance(mem.get(key), int), f"mem.{key}")
    require(isinstance(mem.get("alloc_fault_rate"), (int, float)),
            "mem.alloc_fault_rate")
    threads = mem.get("threads")
    require(isinstance(threads, list), "mem.threads")
    sums = dict.fromkeys(("allocations", "deallocations", "alloc_failures",
                          "alloc_faults_injected"), 0)
    tids = set()
    for t in threads:
        require(isinstance(t.get("tid"), int), "mem.threads[].tid")
        require(t["tid"] not in tids, f"duplicate thread ledger {t['tid']}")
        tids.add(t["tid"])
        for key in sums:
            require(isinstance(t.get(key), int), f"mem.threads[].{key}")
            sums[key] += t[key]
    for key in sums:
        require(sums[key] == mem[key],
                f"mem conservation broken: per-thread {key} sum to "
                f"{sums[key]}, global says {mem[key]}")
    require(mem["allocations"] - mem["deallocations"] == mem["live_blocks"],
            "mem conservation broken: allocations - deallocations != "
            f"live_blocks ({mem['allocations']} - {mem['deallocations']} "
            f"!= {mem['live_blocks']})")
    require(mem["alloc_faults_injected"] <= mem["alloc_failures"],
            "more injected allocation faults than failures")
    require(mem["cache_blocks_reaped"] <= mem["cache_blocks_stranded"],
            "more stranded-cache blocks reaped than ever stranded")
    require(mem["mem_pressure_exits"] <= mem["mem_pressure_onsets"],
            "more pressure exits than onsets")
    if not crash_active:
        for key in ("cache_blocks_stranded", "cache_blocks_reaped"):
            require(mem[key] == 0,
                    f"crash injection off but mem.{key} != 0")
    if not mem_active:
        # The zero-overhead guard: with no capacity bound (configured or
        # chaos-injected) and no fault injection, the failure paths must be
        # provably untaken.
        for key in ("alloc_failures", "alloc_faults_injected",
                    "mem_pressure_onsets", "mem_pressure_exits"):
            require(mem[key] == 0,
                    f"memory pressure machinery off but mem.{key} != 0")
        if not chaos_squeeze:
            require(doc["htm"]["aborts_by_code"].get("alloc-failed", 0) == 0,
                    "memory pressure machinery off but alloc-failed "
                    "aborts recorded")
    if expect_alloc_faults:
        require(mem["alloc_faults_injected"] > 0,
                "--expect-alloc-faults: no allocation faults were injected")
    if expect_mem_squeeze:
        require(chaos_squeeze,
                "--expect-mem-squeeze: no mem-squeeze phase was applied")
        require(mem["mem_pressure_onsets"] > 0,
                "--expect-mem-squeeze: squeeze never produced a pressure "
                "onset")
        require(mem["mem_pressure_exits"] > 0,
                "--expect-mem-squeeze: pressure never exited after the "
                "squeeze released")


def validate_report(path, expect_faults=False, expect_crashes=False,
                    expect_storms=False, expect_clean_timeline=False,
                    expect_service=False, expect_shed=False,
                    expect_chaos=False, expect_alloc_faults=False,
                    expect_mem_squeeze=False, exact_schema=None):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    require(isinstance(version, int) and
            SCHEMA_VERSION_MIN <= version <= SCHEMA_VERSION_MAX,
            f"schema_version must be between {SCHEMA_VERSION_MIN} "
            f"and {SCHEMA_VERSION_MAX}")
    if exact_schema is not None:
        require(version == exact_schema,
                f"--schema {exact_schema}: report is v{version}")
    require(isinstance(doc.get("bench"), str), "bench must be a string")
    opts = doc.get("options")
    require(isinstance(opts, dict), "options must be an object")
    opt_keys = ["duration_ms", "repeats", "max_threads", "fault_rate"]
    if version >= 5:
        opt_keys.append("crash_rate")
    if version >= 7:
        opt_keys.append("sample_interval_ms")
    for key in opt_keys:
        require(isinstance(opts.get(key), (int, float)), f"options.{key}")
    require(opts.get("clock") in ("gv1", "gv5"), "options.clock")
    require(opts.get("retry") in ("cause", "fixed"), "options.retry")
    if version >= 6:
        require(opts.get("validation") in ("exact", "sig"),
                "options.validation")
    if version >= 7:
        require(isinstance(opts.get("slo"), str), "options.slo")
    if version >= 8:
        require(isinstance(opts.get("slo_observe"), bool),
                "options.slo_observe")
    if version >= 9:
        require(isinstance(opts.get("mem_limit"), int), "options.mem_limit")
        require(isinstance(opts.get("alloc_fault_rate"), (int, float)),
                "options.alloc_fault_rate")
    # The service section is bench_service's alone: present iff this is a
    # service report, and only the v8 schema knows it at all.
    if version >= 8:
        require(("service" in doc) == (doc["bench"] == "service"),
                "service section present iff bench == \"service\"")
    else:
        require("service" not in doc,
                f"v{version} report carries a v8 service section")
        require(not (expect_service or expect_shed or expect_chaos),
                "--expect-service/--expect-shed/--expect-chaos need a "
                "v8 bench_service report")
    if "service" in doc:
        validate_service(doc, version, expect_service, expect_shed,
                         expect_chaos)
    else:
        require(not (expect_service or expect_shed or expect_chaos),
                "--expect-service/--expect-shed/--expect-chaos need a "
                "v8 bench_service report")
    # Chaos phases are the one legitimate way fault/crash/memory counters
    # go hot while the --fault-rate/--crash-rate/--mem-limit options stay
    # 0: a fault-storm flips the injector's override, a kill phase injects
    # a thread death, a mem-squeeze installs a pool limit override. The
    # dormancy guards below must not misread orchestrated chaos as a
    # counter leak — but only the kinds that actually fired get a pass.
    chaos_storm = chaos_kill = chaos_squeeze = False
    for p in doc.get("service", {}).get("phases", []):
        if p.get("onset_ms", -1) >= 0:
            chaos_storm |= p.get("kind") == "fault-storm"
            chaos_kill |= p.get("kind") == "kill"
            chaos_squeeze |= p.get("kind") == "mem-squeeze"
    htm = doc.get("htm")
    require(isinstance(htm, dict), "htm must be an object")
    htm_keys = ["commits", "aborts", "abort_rate", "lock_fallbacks",
                "clock_bumps", "writer_commits", "sloppy_stamps",
                "clock_resamples", "clock_catchups", "coalesced_stores",
                "faults_injected", "tle_entries", "storm_entries",
                "storm_exits", "max_consec_aborts"]
    if version >= 5:
        htm_keys += ["crashes_injected", "lock_recoveries", "orphans_reaped"]
    if version >= 6:
        htm_keys += list(SIG_KEYS)
    for key in htm_keys:
        require(isinstance(htm.get(key), (int, float)), f"htm.{key}")
    if opts["clock"] == "gv5":
        require(htm["clock_bumps"] == 0,
                "gv5 run performed shared-clock fetch_adds")
    by_code = htm.get("aborts_by_code")
    require(isinstance(by_code, dict), "htm.aborts_by_code must be an object")
    for code in abort_codes(version):
        require(isinstance(by_code.get(code), int), f"aborts_by_code.{code}")
    require(sum(by_code.values()) == htm["aborts"],
            "aborts_by_code must sum to htm.aborts")
    if expect_faults:
        require(htm["faults_injected"] > 0,
                "--expect-faults: no faults were injected")
    elif opts["fault_rate"] == 0 and not chaos_storm:
        require(htm["faults_injected"] == 0,
                "injection off but htm.faults_injected != 0")
        for code in SPURIOUS_CODES:
            require(by_code[code] == 0,
                    f"injection off but aborts_by_code.{code} != 0")
    if expect_crashes:
        require(version >= 5, "--expect-crashes needs a v5 report")
        for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
            require(htm[key] > 0, f"--expect-crashes: htm.{key} == 0")
    elif version >= 5 and opts["crash_rate"] == 0 and not chaos_kill:
        for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
            require(htm[key] == 0,
                    f"crash injection off but htm.{key} != 0")
    if version >= 6 and opts["validation"] == "exact":
        for key in SIG_KEYS:
            require(htm[key] == 0,
                    f"validation is exact but htm.{key} != 0")
    # The mem section is part of the v9 schema on EVERY bench (the pool is
    # always live); earlier schemas must not carry it.
    if version >= 9:
        require("mem" in doc, "v9 report is missing the mem section")
        mem_active = (opts["mem_limit"] != 0 or
                      opts["alloc_fault_rate"] != 0 or chaos_squeeze)
        crash_active = (expect_crashes or opts.get("crash_rate", 0) != 0 or
                        chaos_kill)
        validate_mem(doc, mem_active, crash_active, expect_alloc_faults,
                     expect_mem_squeeze, chaos_squeeze)
    else:
        require("mem" not in doc,
                f"v{version} report carries a v9 mem section")
        require(not (expect_alloc_faults or expect_mem_squeeze),
                "--expect-alloc-faults/--expect-mem-squeeze need a v9 "
                "report")
    retry = doc.get("retry")
    require(isinstance(retry, dict), "retry must be an object")
    require(retry.get("policy") in ("cause", "fixed"), "retry.policy")
    by_cause = retry.get("by_cause")
    require(isinstance(by_cause, dict), "retry.by_cause must be an object")
    for cause in abort_codes(version):
        entry = by_cause.get(cause)
        require(isinstance(entry, dict), f"retry.by_cause.{cause}")
        for key in ("count", "p50_attempt", "p99_attempt", "max_attempt"):
            require(isinstance(entry.get(key), (int, float)),
                    f"retry.by_cause.{cause}.{key}")
        if entry["count"] > 0:
            require(entry["p50_attempt"] <= entry["p99_attempt"],
                    f"retry.by_cause.{cause} quantiles out of order")
    lat = doc.get("op_latency_ns")
    require(isinstance(lat, dict), "op_latency_ns must be an object")
    for op in (OPS_V6 if version >= 6 else OPS):
        entry = lat.get(op)
        require(isinstance(entry, dict), f"op_latency_ns.{op}")
        for key in ("count", "p50", "p90", "p99", "max", "mean"):
            require(isinstance(entry.get(key), (int, float)),
                    f"op_latency_ns.{op}.{key}")
        if entry["count"] > 0:
            require(entry["p50"] <= entry["p90"] <= entry["p99"],
                    f"op_latency_ns.{op} quantiles out of order")
    conflicts = doc.get("conflicts")
    require(isinstance(conflicts, dict), "conflicts must be an object")
    require(isinstance(conflicts.get("recorded"), int), "conflicts.recorded")
    require(isinstance(conflicts.get("top"), list), "conflicts.top")
    for entry in conflicts["top"]:
        require(isinstance(entry.get("orec"), int), "conflicts.top[].orec")
        require(isinstance(entry.get("count"), int), "conflicts.top[].count")
        require(isinstance(entry.get("by_algo"), dict),
                "conflicts.top[].by_algo")
    trace = doc.get("trace")
    require(isinstance(trace, dict), "trace must be an object")
    require(isinstance(trace.get("compiled"), bool), "trace.compiled")
    require(isinstance(trace.get("events_emitted"), int),
            "trace.events_emitted")
    if version >= 7:
        require(isinstance(trace.get("requested"), bool), "trace.requested")
        require(isinstance(trace.get("enabled"), bool), "trace.enabled")
        require(trace["enabled"] ==
                (trace["requested"] and trace["compiled"]),
                "trace.enabled must be requested AND compiled")
        if not trace["enabled"]:
            require(trace["events_emitted"] == 0,
                    "trace disabled but events were emitted")
        if opts["sample_interval_ms"] > 0:
            validate_timeline(doc, version, expect_storms,
                              expect_clean_timeline)
        else:
            require("timeline" not in doc,
                    "sampling off but a timeline section is present "
                    "(zero-overhead guard)")
            require(not (expect_storms or expect_clean_timeline),
                    "--expect-storms/--expect-clean-timeline need a "
                    "sampled run (options.sample_interval_ms > 0)")
    else:
        require(not (expect_storms or expect_clean_timeline),
                "--expect-storms/--expect-clean-timeline need a v7 report")
    require(isinstance(doc.get("columns"), list), "columns must be an array")
    rows = doc.get("rows")
    require(isinstance(rows, list) and rows, "rows must be non-empty")
    for row in rows:
        require(len(row) == len(doc["columns"]), "row width != column count")
    return doc


def validate_trace(path, expect_events):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list), "traceEvents must be an array")
    if expect_events:
        require(events, "trace has no events (DC_TRACE build expected)")
        require(any(e.get("ph") == "X" for e in events),
                "trace has no complete ('X') transaction spans")
    for e in events:
        # "C" = the telemetry sampler's per-window counter tracks (timeline
        # overlay); counters are process-scoped, so they carry no tid.
        require(e.get("ph") in ("X", "i", "C"),
                f"unexpected phase {e.get('ph')}")
        require(isinstance(e.get("ts"), (int, float)), "event missing ts")
        require(isinstance(e.get("name"), str), "event missing name")
        if e["ph"] != "C":
            require(isinstance(e.get("tid"), int), "event missing tid")
        if e["ph"] == "X":
            require(isinstance(e.get("dur"), (int, float)), "X event dur")
            require(e.get("args", {}).get("outcome") in ("commit", "abort"),
                    "X event outcome")
        if e["ph"] == "C":
            args = e.get("args")
            require(isinstance(args, dict) and args and
                    all(isinstance(v, (int, float)) for v in args.values()),
                    "C event args must be a non-empty numeric series map")
    return events


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    args = argv[2:]
    expect_events = "--expect-events" in args
    expect_faults = "--expect-faults" in args
    expect_crashes = "--expect-crashes" in args
    expect_storms = "--expect-storms" in args
    expect_clean_timeline = "--expect-clean-timeline" in args
    expect_service = "--expect-service" in args
    expect_shed = "--expect-shed" in args
    expect_chaos = "--expect-chaos" in args
    expect_alloc_faults = "--expect-alloc-faults" in args
    expect_mem_squeeze = "--expect-mem-squeeze" in args
    exact_schema = None
    trace_paths = []
    i = 0
    while i < len(args):
        if args[i] == "--schema":
            if i + 1 >= len(args) or not args[i + 1].isdigit():
                print("validate_report: --schema needs an integer",
                      file=sys.stderr)
                return 2
            exact_schema = int(args[i + 1])
            i += 2
            continue
        if not args[i].startswith("--"):
            trace_paths.append(args[i])
        i += 1
    report = validate_report(argv[1], expect_faults, expect_crashes,
                             expect_storms, expect_clean_timeline,
                             expect_service, expect_shed, expect_chaos,
                             expect_alloc_faults, expect_mem_squeeze,
                             exact_schema)
    summary = [f"report ok (bench={report['bench']}, "
               f"commits={report['htm']['commits']}, "
               f"faults={report['htm']['faults_injected']}, "
               f"crashes={report['htm'].get('crashes_injected', 'n/a')})"]
    if "timeline" in report:
        tl = report["timeline"]
        storms = tl["annotation_totals"]["storm_onset"]
        summary.append(f"timeline ok ({tl['windows_total']} windows, "
                       f"{storms} storm onsets, "
                       f"{tl['slo']['violations_total']} SLO violations)")
    if "mem" in report:
        mem = report["mem"]
        summary.append(f"mem ok (allocs={mem['allocations']}, "
                       f"failures={mem['alloc_failures']}, "
                       f"injected={mem['alloc_faults_injected']}, "
                       f"pressure={mem['mem_pressure_onsets']}/"
                       f"{mem['mem_pressure_exits']})")
    if "service" in report:
        svc = report["service"]
        summary.append(f"service ok (generated={svc['sessions_generated']}, "
                       f"shed={svc['sessions_shed']}, "
                       f"shed_mem={svc.get('sessions_shed_mem', 0)}, "
                       f"killed={svc['sessions_killed']}, "
                       f"oom={svc.get('sessions_oom', 0)}, "
                       f"chaos_phases={svc['chaos_phases']})")
    if trace_paths:
        events = validate_trace(trace_paths[0], expect_events)
        summary.append(f"trace ok ({len(events)} events)")
    print("validate_report: " + "; ".join(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
