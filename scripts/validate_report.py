#!/usr/bin/env python3
"""Validate a benchmark --json report (schema_version 4 through 6) and,
optionally, a Chrome trace-event file produced by --trace.

Usage: scripts/validate_report.py REPORT.json [TRACE.json] [--expect-events]
           [--expect-faults] [--expect-crashes]

The C++ unit tests (tests/obs/export_schema_test.cpp) validate the same
schemas in-process; this script is the out-of-process check CI runs against
a real benchmark binary's output, so a packaging or flushing bug that the
in-process test cannot see still fails the pipeline. --expect-events makes
an empty trace an error (used by the DC_TRACE=ON smoke leg);
--expect-faults makes htm.faults_injected == 0 an error (used by the fault
smoke leg, which runs with --fault-rate > 0). Without --expect-faults and
with options.fault_rate == 0 the validator enforces the converse: a run
with injection off must report zero injected faults and zero spurious
aborts. --expect-crashes (v5 reports only) makes all three of
htm.crashes_injected / htm.lock_recoveries / htm.orphans_reaped == 0 an
error (the crash smoke leg, which runs with --crash-rate > 0); without it
and with options.crash_rate == 0 all three counters must be exactly zero —
the zero-overhead guard that proves the injector is fully dormant on clean
runs. v6 reports carry options.validation and the signature-validation
counters htm.sig_validations / htm.sig_false_aborts /
htm.sig_ring_overflows, which must all be exactly zero when validation is
"exact" — the same dormancy guard applied to the signature backend.
"""
import json
import sys

SCHEMA_VERSION_MIN = 4
SCHEMA_VERSION_MAX = 6

OPS = ("register", "update", "deregister", "collect", "commit")
OPS_V6 = OPS + ("validate",)
SIG_KEYS = ("sig_validations", "sig_false_aborts", "sig_ring_overflows")
ABORT_CODES = ("none", "conflict", "overflow", "explicit", "illegal-access",
               "interrupt", "tlb-miss", "save-restore")
SPURIOUS_CODES = ("interrupt", "tlb-miss", "save-restore")


def fail(msg):
    print(f"validate_report: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def validate_report(path, expect_faults=False, expect_crashes=False):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    require(isinstance(version, int) and
            SCHEMA_VERSION_MIN <= version <= SCHEMA_VERSION_MAX,
            f"schema_version must be between {SCHEMA_VERSION_MIN} "
            f"and {SCHEMA_VERSION_MAX}")
    require(isinstance(doc.get("bench"), str), "bench must be a string")
    opts = doc.get("options")
    require(isinstance(opts, dict), "options must be an object")
    opt_keys = ["duration_ms", "repeats", "max_threads", "fault_rate"]
    if version >= 5:
        opt_keys.append("crash_rate")
    for key in opt_keys:
        require(isinstance(opts.get(key), (int, float)), f"options.{key}")
    require(opts.get("clock") in ("gv1", "gv5"), "options.clock")
    require(opts.get("retry") in ("cause", "fixed"), "options.retry")
    if version >= 6:
        require(opts.get("validation") in ("exact", "sig"),
                "options.validation")
    htm = doc.get("htm")
    require(isinstance(htm, dict), "htm must be an object")
    htm_keys = ["commits", "aborts", "abort_rate", "lock_fallbacks",
                "clock_bumps", "writer_commits", "sloppy_stamps",
                "clock_resamples", "clock_catchups", "coalesced_stores",
                "faults_injected", "tle_entries", "storm_entries",
                "storm_exits", "max_consec_aborts"]
    if version >= 5:
        htm_keys += ["crashes_injected", "lock_recoveries", "orphans_reaped"]
    if version >= 6:
        htm_keys += list(SIG_KEYS)
    for key in htm_keys:
        require(isinstance(htm.get(key), (int, float)), f"htm.{key}")
    if opts["clock"] == "gv5":
        require(htm["clock_bumps"] == 0,
                "gv5 run performed shared-clock fetch_adds")
    by_code = htm.get("aborts_by_code")
    require(isinstance(by_code, dict), "htm.aborts_by_code must be an object")
    for code in ABORT_CODES:
        require(isinstance(by_code.get(code), int), f"aborts_by_code.{code}")
    require(sum(by_code.values()) == htm["aborts"],
            "aborts_by_code must sum to htm.aborts")
    if expect_faults:
        require(htm["faults_injected"] > 0,
                "--expect-faults: no faults were injected")
    elif opts["fault_rate"] == 0:
        require(htm["faults_injected"] == 0,
                "injection off but htm.faults_injected != 0")
        for code in SPURIOUS_CODES:
            require(by_code[code] == 0,
                    f"injection off but aborts_by_code.{code} != 0")
    if expect_crashes:
        require(version >= 5, "--expect-crashes needs a v5 report")
        for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
            require(htm[key] > 0, f"--expect-crashes: htm.{key} == 0")
    elif version >= 5 and opts["crash_rate"] == 0:
        for key in ("crashes_injected", "lock_recoveries", "orphans_reaped"):
            require(htm[key] == 0,
                    f"crash injection off but htm.{key} != 0")
    if version >= 6 and opts["validation"] == "exact":
        for key in SIG_KEYS:
            require(htm[key] == 0,
                    f"validation is exact but htm.{key} != 0")
    retry = doc.get("retry")
    require(isinstance(retry, dict), "retry must be an object")
    require(retry.get("policy") in ("cause", "fixed"), "retry.policy")
    by_cause = retry.get("by_cause")
    require(isinstance(by_cause, dict), "retry.by_cause must be an object")
    for cause in ABORT_CODES:
        entry = by_cause.get(cause)
        require(isinstance(entry, dict), f"retry.by_cause.{cause}")
        for key in ("count", "p50_attempt", "p99_attempt", "max_attempt"):
            require(isinstance(entry.get(key), (int, float)),
                    f"retry.by_cause.{cause}.{key}")
        if entry["count"] > 0:
            require(entry["p50_attempt"] <= entry["p99_attempt"],
                    f"retry.by_cause.{cause} quantiles out of order")
    lat = doc.get("op_latency_ns")
    require(isinstance(lat, dict), "op_latency_ns must be an object")
    for op in (OPS_V6 if version >= 6 else OPS):
        entry = lat.get(op)
        require(isinstance(entry, dict), f"op_latency_ns.{op}")
        for key in ("count", "p50", "p90", "p99", "max", "mean"):
            require(isinstance(entry.get(key), (int, float)),
                    f"op_latency_ns.{op}.{key}")
        if entry["count"] > 0:
            require(entry["p50"] <= entry["p90"] <= entry["p99"],
                    f"op_latency_ns.{op} quantiles out of order")
    conflicts = doc.get("conflicts")
    require(isinstance(conflicts, dict), "conflicts must be an object")
    require(isinstance(conflicts.get("recorded"), int), "conflicts.recorded")
    require(isinstance(conflicts.get("top"), list), "conflicts.top")
    for entry in conflicts["top"]:
        require(isinstance(entry.get("orec"), int), "conflicts.top[].orec")
        require(isinstance(entry.get("count"), int), "conflicts.top[].count")
        require(isinstance(entry.get("by_algo"), dict),
                "conflicts.top[].by_algo")
    trace = doc.get("trace")
    require(isinstance(trace, dict), "trace must be an object")
    require(isinstance(trace.get("compiled"), bool), "trace.compiled")
    require(isinstance(trace.get("events_emitted"), int),
            "trace.events_emitted")
    require(isinstance(doc.get("columns"), list), "columns must be an array")
    rows = doc.get("rows")
    require(isinstance(rows, list) and rows, "rows must be non-empty")
    for row in rows:
        require(len(row) == len(doc["columns"]), "row width != column count")
    return doc


def validate_trace(path, expect_events):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list), "traceEvents must be an array")
    if expect_events:
        require(events, "trace has no events (DC_TRACE build expected)")
        require(any(e.get("ph") == "X" for e in events),
                "trace has no complete ('X') transaction spans")
    for e in events:
        require(e.get("ph") in ("X", "i"), f"unexpected phase {e.get('ph')}")
        require(isinstance(e.get("ts"), (int, float)), "event missing ts")
        require(isinstance(e.get("tid"), int), "event missing tid")
        require(isinstance(e.get("name"), str), "event missing name")
        if e["ph"] == "X":
            require(isinstance(e.get("dur"), (int, float)), "X event dur")
            require(e.get("args", {}).get("outcome") in ("commit", "abort"),
                    "X event outcome")
    return events


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    args = argv[2:]
    expect_events = "--expect-events" in args
    expect_faults = "--expect-faults" in args
    expect_crashes = "--expect-crashes" in args
    report = validate_report(argv[1], expect_faults, expect_crashes)
    summary = [f"report ok (bench={report['bench']}, "
               f"commits={report['htm']['commits']}, "
               f"faults={report['htm']['faults_injected']}, "
               f"crashes={report['htm'].get('crashes_injected', 'n/a')})"]
    trace_paths = [a for a in args if not a.startswith("--")]
    if trace_paths:
        events = validate_trace(trace_paths[0], expect_events)
        summary.append(f"trace ok ({len(events)} events)")
    print("validate_report: " + "; ".join(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
